"""Path exploration and test finalization (paper §4 / §6).

The explorer drives :func:`repro.symex.stepper.step` over a frontier of
execution states.  Depth-first search is the default (§6 "Path
traversal"); random-backtracking and coverage-greedy strategies are
selectable for the exploration-strategy ablation.

A single incremental SMT solver is shared across the whole run: path
conditions are passed as one-shot assumptions, so the bit-blaster cache
and learned clauses persist across paths (the stand-in for "Z3
configured with incremental solving").
"""

from __future__ import annotations

import random
import time

from ..smt import Solver, evaluate, terms as T
from ..smt.evaluate import EvaluationError
from ..testback.spec import (
    AbstractTestCase,
    ExpectedPacket,
    PacketData,
    RegisterSpec,
    TableEntrySpec,
    ValueSetSpec,
)
from .concolic import ConcolicFailure, resolve_concolics
from .coverage import CoverageTracker
from .state import (
    ExecutionState,
    RegisterDecision,
    TableEntryDecision,
    ValueSetDecision,
)
from .stepper import step

__all__ = ["Explorer", "ExplorationStats"]


class ExplorationStats:
    def __init__(self):
        self.steps = 0
        self.paths_finished = 0
        self.paths_pruned = 0
        self.paths_infeasible = 0
        self.tests_emitted = 0
        self.tests_blocked = 0
        self.concolic_failures = 0
        self.step_time = 0.0
        self.finalize_time = 0.0

    def as_dict(self):
        return dict(self.__dict__)


def _model_eval(term, model):
    assignment = {}
    for var in T.free_vars(term):
        assignment[var] = model[var]
    return evaluate(term, assignment)


class Explorer:
    def __init__(self, program, target, *, strategy: str = "dfs",
                 seed: int | None = None, prune_unsat: bool = True,
                 max_tests: int | None = None,
                 max_paths: int | None = None,
                 max_steps: int = 2_000_000,
                 stop_at_full_coverage: bool = False,
                 concolic_max_rounds: int = 4,
                 concolic_fallback: bool = True,
                 concolic_enabled: bool = True,
                 randomize_values: bool = False):
        self.program = program
        self.target = target
        self.strategy = strategy
        self.rng = random.Random(seed)
        self.seed = seed
        self.prune_unsat = prune_unsat
        self.max_tests = max_tests
        self.max_paths = max_paths
        self.max_steps = max_steps
        self.stop_at_full_coverage = stop_at_full_coverage
        self.concolic_max_rounds = concolic_max_rounds
        self.concolic_fallback = concolic_fallback
        self.concolic_enabled = concolic_enabled
        # §3: "the output port is chosen at random" — when enabled,
        # unconstrained control-plane values get random (seeded)
        # preferred assignments instead of the solver's defaults.
        self.randomize_values = randomize_values
        self.solver = Solver()
        self.coverage = CoverageTracker(program)
        self.stats = ExplorationStats()
        self._test_counter = 0

    # ------------------------------------------------------------------
    # Frontier policies
    # ------------------------------------------------------------------

    def _pick(self, frontier: list[ExecutionState]) -> ExecutionState:
        if self.strategy == "dfs":
            return frontier.pop()
        if self.strategy == "random":
            idx = self.rng.randrange(len(frontier))
            return frontier.pop(idx)
        if self.strategy == "greedy":
            # Prefer a state whose pending work contains uncovered
            # statements; fall back to random.
            best_idx, best_score = None, -1
            for idx, state in enumerate(frontier[-16:]):
                real_idx = len(frontier) - len(frontier[-16:]) + idx
                score = 0
                for item in state.work[-8:]:
                    sid = getattr(item, "stmt_id", None)
                    if sid is not None and sid not in self.coverage.covered:
                        score += 1
                if score > best_score:
                    best_idx, best_score = real_idx, score
            if best_idx is None or best_score == 0:
                best_idx = self.rng.randrange(len(frontier))
            return frontier.pop(best_idx)
        raise ValueError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self):
        """Generate tests; yields AbstractTestCase objects."""
        initial = self.target.build_initial_state(self.program)
        frontier: list[ExecutionState] = [initial]
        while frontier:
            if self.max_tests is not None and self.stats.tests_emitted >= self.max_tests:
                return
            if self.max_paths is not None and self.stats.paths_finished >= self.max_paths:
                return
            if self.stats.steps >= self.max_steps:
                return
            if self.stop_at_full_coverage and self.coverage.fully_covered:
                return
            state = self._pick(frontier)
            t0 = time.perf_counter()
            successors = step(state)
            self.stats.step_time += time.perf_counter() - t0
            self.stats.steps += 1
            if len(successors) > 1 and self.prune_unsat:
                successors = [s for s in successors if self._feasible(s)]
            for s in successors:
                if s.finished:
                    self.stats.paths_finished += 1
                    test = self._finalize(s)
                    if test is not None:
                        self.stats.tests_emitted += 1
                        yield test
                else:
                    frontier.append(s)

    def generate(self, n: int | None = None) -> list[AbstractTestCase]:
        """Convenience: collect up to ``n`` tests into a list."""
        out = []
        for test in self.run():
            out.append(test)
            if n is not None and len(out) >= n:
                break
        return out

    # ------------------------------------------------------------------
    # Feasibility pruning
    # ------------------------------------------------------------------

    def _feasible(self, state: ExecutionState) -> bool:
        if not state.path_cond:
            return True
        status = self.solver.check(*state.path_cond)
        if status != "sat":
            self.stats.paths_pruned += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Finalization: path -> concrete test
    # ------------------------------------------------------------------

    def _finalize(self, state: ExecutionState) -> AbstractTestCase | None:
        t0 = time.perf_counter()
        try:
            return self._finalize_inner(state)
        finally:
            self.stats.finalize_time += time.perf_counter() - t0

    def _finalize_inner(self, state: ExecutionState) -> AbstractTestCase | None:
        if state.blocked_reason is not None:
            # E.g. tainted output port: the test would be flaky (§5.3).
            self.stats.tests_blocked += 1
            return None
        assumptions = list(state.path_cond)
        if not self.concolic_enabled:
            # Ablation mode: concolic placeholders stay unconstrained,
            # so extern results in the emitted test are arbitrary.
            status = self.solver.check(*assumptions)
            if status != "sat":
                self.stats.paths_infeasible += 1
                return None
            return self._build_test(state, assumptions, self.solver.model())
        try:
            extra, model = resolve_concolics(
                state, self.solver, assumptions,
                max_rounds=self.concolic_max_rounds,
                allow_fallback=self.concolic_fallback,
            )
        except ConcolicFailure:
            self.stats.concolic_failures += 1
            self.stats.paths_infeasible += 1
            return None
        assumptions = assumptions + extra
        return self._build_test(state, assumptions, model)

    def _build_test(self, state, assumptions, model) -> AbstractTestCase | None:
        # --- input packet length -------------------------------------
        pkt = state.packet
        pkt_len = self._choose_pkt_len(state, assumptions, model)
        if pkt_len is None:
            self.stats.paths_infeasible += 1
            return None
        # Re-solve with the length pinned so every value is consistent.
        pins = [T.eq(pkt.pkt_len, T.bv_const(pkt_len, 32))]
        status = self.solver.check(*assumptions, *pins)
        if status != "sat":
            self.stats.paths_infeasible += 1
            return None
        model = self.solver.model()

        if self.randomize_values:
            model, pins = self._randomize_model(state, assumptions, pins, model)

        # --- input packet content ------------------------------------
        content = 0
        for seg in pkt.input_segments:
            content = (content << seg.width) | _model_eval(seg.term, model)
        if pkt_len > pkt.input_bits:
            content <<= pkt_len - pkt.input_bits  # zero payload padding
        elif pkt_len < pkt.input_bits:
            content >>= pkt.input_bits - pkt_len  # truncated (too-short path)
        in_port = state.props.get("input_port_value")
        if in_port is None:
            term = state.props.get("input_port_term")
            in_port = _model_eval(term, model) if term is not None else 0
        input_packet = PacketData(bits=content, width=pkt_len, port=in_port)

        # --- expected outputs (target decides) -------------------------
        outputs, dropped = self.target.finalize_outputs(
            state, lambda term: _model_eval(term, model)
        )
        # Payload the parser never touched is forwarded verbatim by real
        # targets: append the (zero-chosen) tail beyond the parsed bits.
        extra_payload = pkt_len - pkt.input_bits
        if extra_payload > 0 and not state.props.get("truncated"):
            outputs = [
                (port, bits << extra_payload, width + extra_payload,
                 dont_care << extra_payload)
                for (port, bits, width, dont_care) in outputs
            ]
        expected = [
            ExpectedPacket(
                bits=bits, width=width, port=port, dont_care=dont_care
            )
            for (port, bits, width, dont_care) in outputs
        ]

        # --- control plane --------------------------------------------
        entries, value_sets, registers = self._concretize_cp(state, model)

        self._test_counter += 1
        test = AbstractTestCase(
            test_id=self._test_counter,
            target=self.target.name,
            program=self.program.source_name,
            seed=self.seed,
            input_packet=input_packet,
            entries=entries,
            value_sets=value_sets,
            registers=registers,
            expected=expected,
            dropped=dropped,
            covered_statements=frozenset(state.coverage),
            trace=list(state.trace),
        )
        self.coverage.record(state.coverage)
        return test

    def _choose_pkt_len(self, state, assumptions, model) -> int | None:
        """Minimum input length consistent with the path (the paper's
        "minimum header size required to exercise the path")."""
        pkt = state.packet
        want = pkt.input_bits
        # Fast path: exactly the consumed bits.
        if self.solver.check(
            *assumptions, T.eq(pkt.pkt_len, T.bv_const(want, 32))
        ) == "sat":
            return want
        # Otherwise binary-search the smallest feasible length in
        # [0, model value], reading the witness value from each SAT
        # model so the final answer is itself feasible.  (Too-short
        # branches and target minimum sizes land here.)
        best = _model_eval(pkt.pkt_len, model)
        lo = 0
        hi = best - 1
        for _ in range(34):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            ok = self.solver.check(
                *assumptions,
                T.ule(pkt.pkt_len, T.bv_const(mid, 32)),
            ) == "sat"
            if ok:
                witness = _model_eval(pkt.pkt_len, self.solver.model())
                best = min(best, witness)
                hi = witness - 1
            else:
                lo = mid + 1
        return best

    def _randomize_model(self, state, assumptions, pins, model):
        """Prefer random values for control-plane argument variables and
        the input port; keep whatever stays satisfiable."""
        candidates = []
        port_term = state.props.get("input_port_term")
        if port_term is not None and port_term.is_var:
            candidates.append(port_term)
        for decision in state.cp_decisions:
            if isinstance(decision, TableEntryDecision):
                for _name, term in decision.args:
                    if term.is_var:
                        candidates.append(term)
        for var in candidates:
            value = self.rng.getrandbits(var.width)
            attempt = T.eq(var, T.bv_const(value, var.width))
            if self.solver.check(*assumptions, *pins, attempt) == "sat":
                pins = pins + [attempt]
                model = self.solver.model()
        if candidates and pins:
            status = self.solver.check(*assumptions, *pins)
            if status == "sat":
                model = self.solver.model()
        return model, pins

    def _concretize_cp(self, state, model):
        entries = []
        value_sets = []
        registers = []
        for decision in state.cp_decisions:
            if isinstance(decision, TableEntryDecision):
                keys = []
                for name, kind, roles in decision.key_fields:
                    keys.append(
                        (name, kind, {r: _model_eval(t, model) for r, t in roles.items()})
                    )
                args = [(n, _model_eval(t, model)) for n, t in decision.args]
                entries.append(
                    TableEntrySpec(
                        table=decision.table,
                        action=decision.action,
                        keys=keys,
                        action_args=args,
                        priority=decision.priority,
                    )
                )
            elif isinstance(decision, ValueSetDecision):
                value_sets.append(
                    ValueSetSpec(
                        value_set=decision.value_set,
                        member=_model_eval(decision.member, model),
                    )
                )
            elif isinstance(decision, RegisterDecision):
                registers.append(
                    RegisterSpec(
                        instance=decision.instance,
                        index=decision.index,
                        value=_model_eval(decision.var, model),
                    )
                )
        return entries, value_sets, registers
