"""The packet-sizing model (paper §5.2.1).

Three variables describe the packet as execution proceeds:

- ``I`` (input packet): the *minimum* content the input packet must
  carry to traverse the current path.  It grows lazily: whenever the
  live packet runs dry, a fresh symbolic segment is allocated and
  appended to both ``I`` and ``L``.
- ``L`` (live packet): the packet as the P4 program currently sees it.
  Targets may prepend parseable metadata (Tofino intrinsic metadata,
  frame check sequences) to ``L`` without affecting ``I``.
- ``E`` (emit buffer): headers emitted by the deparser, in order.  At a
  target-defined trigger point (normally deparser exit) ``E`` is
  prepended to the remaining ``L``.

The *length* of the input packet is additionally tracked by a symbolic
32-bit variable ``pkt_len`` (in bits).  Successful extracts constrain
``pkt_len >= consumed``; the too-short branch constrains
``consumed_before <= pkt_len < consumed_after``, which is how tests
like Fig. 1c line 6 (a 96-bit Ethernet packet) are produced.
"""

from __future__ import annotations

from ..smt import terms as T
from .value import SymVal, active_scope

__all__ = ["PacketModel", "Segment", "PacketTooShort"]

_pkt_counter = [0]


class PacketTooShort(Exception):
    """Raised internally when a non-branching consume cannot be satisfied."""


class Segment:
    """A contiguous run of packet bits with a taint mask."""

    __slots__ = ("term", "taint")

    def __init__(self, term: T.Term, taint: int = 0):
        self.term = term
        self.taint = taint

    @property
    def width(self) -> int:
        return self.term.width

    def __repr__(self):
        return f"Segment({self.term!r}, taint={self.taint:#x})"


class PacketModel:
    def __init__(self, label: str = "pkt"):
        # Inside a MintScope the model number is lineage-local (so the
        # variable names a path mints do not depend on how many packet
        # models the process created before); otherwise process-global.
        scope = active_scope()
        if scope is not None:
            n = scope.next_count(f"{label}\x00model")
        else:
            _pkt_counter[0] += 1
            n = _pkt_counter[0]
        self.label = f"{label}{n}"
        self.input_segments: list[Segment] = []   # I
        self.live: list[Segment] = []             # L
        self.emit_buffer: list[Segment] = []      # E
        self.input_bits = 0                       # len(I)
        self.pkt_len = T.bv_var(f"{self.label}*len", 32)
        self._fresh = 0

    # ------------------------------------------------------------------
    # Cloning (states fork at branches)
    # ------------------------------------------------------------------

    def clone(self) -> "PacketModel":
        c = PacketModel.__new__(PacketModel)
        c.label = self.label
        c.input_segments = list(self.input_segments)
        c.live = list(self.live)
        c.emit_buffer = list(self.emit_buffer)
        c.input_bits = self.input_bits
        c.pkt_len = self.pkt_len
        c._fresh = self._fresh
        return c

    # ------------------------------------------------------------------
    # Target hooks: prepend/append parseable content to the live packet
    # ------------------------------------------------------------------

    def prepend_live(self, value: SymVal) -> None:
        self.live.insert(0, Segment(value.term, value.taint))

    def append_live(self, value: SymVal) -> None:
        self.live.append(Segment(value.term, value.taint))

    def live_bits(self) -> int:
        return sum(s.width for s in self.live)

    def emit_bits(self) -> int:
        return sum(s.width for s in self.emit_buffer)

    # ------------------------------------------------------------------
    # Growing I
    # ------------------------------------------------------------------

    def _grow_input(self, bits: int) -> None:
        """Allocate a fresh symbolic segment of ``bits`` bits, recording
        that the input packet must be at least that much longer."""
        self._fresh += 1
        var = T.bv_var(f"{self.label}*in{self._fresh}", bits)
        seg_in = Segment(var, 0)
        self.input_segments.append(seg_in)
        self.live.append(Segment(var, 0))
        self.input_bits += bits

    def ensure_live(self, bits: int) -> int:
        """Make sure at least ``bits`` bits are live; returns how many
        bits of fresh input were pulled in (0 if L already sufficed)."""
        deficit = bits - self.live_bits()
        if deficit > 0:
            self._grow_input(deficit)
            return deficit
        return 0

    # ------------------------------------------------------------------
    # Consuming from L (extract / advance / lookahead)
    # ------------------------------------------------------------------

    def consume(self, bits: int) -> SymVal:
        """Remove ``bits`` bits from the front of L and return them as
        one value (bits appear in wire order, most significant first).
        Grows I as needed."""
        if bits == 0:
            raise ValueError("cannot consume zero bits")
        self.ensure_live(bits)
        parts: list[T.Term] = []
        taint = 0
        remaining = bits
        while remaining > 0:
            seg = self.live[0]
            if seg.width <= remaining:
                self.live.pop(0)
                parts.append(seg.term)
                taint = (taint << seg.width) | seg.taint
                remaining -= seg.width
            else:
                w = seg.width
                take_term = T.extract(seg.term, w - 1, w - remaining)
                rest_term = T.extract(seg.term, w - remaining - 1, 0)
                take_taint = (seg.taint >> (w - remaining)) & ((1 << remaining) - 1)
                rest_taint = seg.taint & ((1 << (w - remaining)) - 1)
                self.live[0] = Segment(rest_term, rest_taint)
                parts.append(take_term)
                taint = (taint << remaining) | take_taint
                remaining = 0
        term = T.concat(*parts) if len(parts) > 1 else parts[0]
        return SymVal(term, taint)

    def peek(self, bits: int) -> SymVal:
        """Like consume but non-destructive (lookahead)."""
        value = self.consume(bits)
        self.live.insert(0, Segment(value.term, value.taint))
        return value

    # ------------------------------------------------------------------
    # Emitting (deparser)
    # ------------------------------------------------------------------

    def emit(self, value: SymVal) -> None:
        self.emit_buffer.append(Segment(value.term, value.taint))

    def commit_emit(self) -> None:
        """Trigger point: prepend E to the (unparsed remainder of) L."""
        self.live = self.emit_buffer + self.live
        self.emit_buffer = []

    def drop_live(self) -> None:
        self.live = []

    def truncate_live(self, bits: int) -> None:
        """Keep only the first ``bits`` bits of L (mtu_truncate etc.)."""
        out: list[Segment] = []
        remaining = bits
        for seg in self.live:
            if remaining <= 0:
                break
            if seg.width <= remaining:
                out.append(seg)
                remaining -= seg.width
            else:
                w = seg.width
                out.append(
                    Segment(
                        T.extract(seg.term, w - 1, w - remaining),
                        (seg.taint >> (w - remaining)) & ((1 << remaining) - 1),
                    )
                )
                remaining = 0
        self.live = out

    # ------------------------------------------------------------------
    # Length constraints
    # ------------------------------------------------------------------

    def len_ok_constraint(self) -> T.Term:
        """pkt_len covers everything consumed so far (success branch)."""
        return T.uge(self.pkt_len, T.bv_const(self.input_bits, 32))

    def too_short_constraint(self, needed_bits: int) -> T.Term:
        """The next pull of ``needed_bits`` fresh input bits fails:
        input_bits <= pkt_len < input_bits + needed_bits."""
        lo = T.uge(self.pkt_len, T.bv_const(self.input_bits, 32))
        hi = T.ult(self.pkt_len, T.bv_const(self.input_bits + needed_bits, 32))
        return T.and_(lo, hi)

    # ------------------------------------------------------------------
    # Final materialization helpers
    # ------------------------------------------------------------------

    def input_term(self) -> T.Term | None:
        if not self.input_segments:
            return None
        return T.concat(*[s.term for s in self.input_segments]) \
            if len(self.input_segments) > 1 else self.input_segments[0].term

    def live_value(self) -> SymVal | None:
        if not self.live:
            return None
        parts = [s.term for s in self.live]
        taint = 0
        for s in self.live:
            taint = (taint << s.width) | s.taint
        term = T.concat(*parts) if len(parts) > 1 else parts[0]
        return SymVal(term, taint)
