"""Per-path execution state (paper §6).

Each path through the program owns an :class:`ExecutionState` holding
the symbolic environment, collected path constraints, the packet model,
the continuation (work) stack, recorded control-plane decisions,
concolic bindings, coverage, and target scratch space.  States are
cloned at branch points.

Control flow is continuation-based (§5.1.2): the ``work`` stack holds a
mix of IR statements, parser-state jump tokens, frame/exit markers, and
plain Python callables contributed by the target extension (the "green
dashed" glue such as the traffic manager).  Popping work items one at a
time lets target code splice arbitrary continuations — recirculation
re-pushes the whole pipeline, clones fork it, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.types import HeaderType, P4Type, StackType, StructType
from ..smt import terms as T
from .packet import PacketModel
from .value import SymVal, fresh_tainted, fresh_var, sym_bool, sym_const

__all__ = [
    "ExecutionState",
    "Frame",
    "FrameStack",
    "PathConds",
    "FrontierSnapshot",
    "ParserStateItem",
    "PopFrame",
    "ExitMarker",
    "ReturnMarker",
    "TableEntryDecision",
    "ValueSetDecision",
    "ConcolicBinding",
    "RegisterDecision",
    "STATE_STATS",
    "state_stats_snapshot",
    "reset_state_stats",
]

# Process-wide counters proving the O(1)-fork claims: clones never copy
# path-condition storage (``path_cond_copies`` stays 0 by construction)
# and frame mutation copies only the touched frame (``frame_cow_copies``).
STATE_STATS = {
    "state_clones": 0,
    "path_cond_copies": 0,
    "path_cond_appends": 0,
    "frame_cow_copies": 0,
    "frame_stack_copies": 0,
}


def state_stats_snapshot() -> dict:
    return dict(STATE_STATS)


def reset_state_stats() -> None:
    for key in STATE_STATS:
        STATE_STATS[key] = 0


class PathConds:
    """Persistent path-condition sequence: O(1) clone, O(1) append.

    Storage is a cons list shared between clones (``_tail`` is a
    ``(term, parent)`` pair); appending re-points this instance's tail
    without touching siblings.  Iteration yields insertion order.
    """

    __slots__ = ("_tail", "_len")

    def __init__(self, iterable=None):
        self._tail = None
        self._len = 0
        if iterable is not None:
            for term in iterable:
                self.append(term)

    def append(self, term) -> None:
        self._tail = (term, self._tail)
        self._len += 1
        STATE_STATS["path_cond_appends"] += 1

    def clone(self) -> "PathConds":
        c = PathConds.__new__(PathConds)
        c._tail = self._tail
        c._len = self._len
        return c

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self):
        out = []
        node = self._tail
        while node is not None:
            out.append(node[0])
            node = node[1]
        return reversed(out)

    def __repr__(self) -> str:
        return f"PathConds({len(self)} terms)"


class Frame:
    """An alias frame: block-local names -> canonical storage paths.

    ``_stamp`` is the ownership token of the :class:`FrameStack` that
    may still mutate this frame in place; any stack holding a different
    stamp copies the frame before writing (copy-on-write).
    """

    __slots__ = ("aliases", "_stamp")

    def __init__(self, aliases: dict[str, str] | None = None, stamp=None):
        self.aliases = dict(aliases or {})
        self._stamp = stamp

    def clone(self) -> "Frame":
        return Frame(self.aliases)


class FrameStack:
    """Copy-on-write stack of alias frames: O(1) clone.

    ``clone`` shares the underlying list and revokes in-place write
    rights on *both* sides by issuing fresh stamps; the first mutation
    after a clone copies the list (O(depth), depth is a handful) and
    the touched frame only — never the other frames' dictionaries,
    which is where the old deep-copy cost lived.
    """

    __slots__ = ("_frames", "_stamp", "_list_shared")

    def __init__(self):
        self._stamp = object()
        self._frames: list[Frame] = [Frame(stamp=self._stamp)]
        self._list_shared = False

    def clone(self) -> "FrameStack":
        c = FrameStack.__new__(FrameStack)
        c._frames = self._frames
        c._stamp = object()
        c._list_shared = True
        # The source loses in-place rights too: its next frame write
        # must copy rather than mutate an object the clone still sees.
        self._stamp = object()
        self._list_shared = True
        return c

    def _own_list(self) -> None:
        if self._list_shared:
            self._frames = list(self._frames)
            self._list_shared = False
            STATE_STATS["frame_stack_copies"] += 1

    def push(self, aliases: dict[str, str] | None = None) -> None:
        self._own_list()
        self._frames.append(Frame(aliases, stamp=self._stamp))

    def pop(self) -> Frame:
        self._own_list()
        return self._frames.pop()

    def bind(self, name: str, path: str) -> None:
        top = self._frames[-1]
        if top._stamp is not self._stamp:
            self._own_list()
            top = Frame(top.aliases, stamp=self._stamp)
            self._frames[-1] = top
            STATE_STATS["frame_cow_copies"] += 1
        top.aliases[name] = path

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self):
        return iter(self._frames)

    def __reversed__(self):
        return reversed(self._frames)

    def __getitem__(self, idx):
        return self._frames[idx]

    def __repr__(self) -> str:
        return f"FrameStack({len(self._frames)} frames)"


class ParserStateItem:
    """Continuation token: execute a parser state."""

    __slots__ = ("parser", "state")

    def __init__(self, parser: str, state: str):
        self.parser = parser
        self.state = state

    def __repr__(self):
        return f"ParserStateItem({self.parser}.{self.state})"


class PopFrame:
    __slots__ = ()


class ExitMarker:
    """Boundary that ``exit`` unwinds to (end of a control)."""

    __slots__ = ()


class ReturnMarker:
    """Boundary that ``return`` unwinds to (end of an action)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Control-plane decisions recorded along a path
# ---------------------------------------------------------------------------

class TableEntryDecision:
    """One entry P4Testgen will install to steer this path."""

    def __init__(self, table: str, action: str, key_fields: list, args: list,
                 priority: int | None = None):
        # key_fields: list of (key_name, match_kind, dict of role->Term)
        # roles: "value", "mask", "lo", "hi", "prefix_len"
        self.table = table
        self.action = action
        self.key_fields = key_fields
        self.args = args  # list of (param_name, Term)
        self.priority = priority

    def __repr__(self):
        return f"TableEntryDecision({self.table} -> {self.action})"


class ValueSetDecision:
    def __init__(self, value_set: str, member: T.Term):
        self.value_set = value_set
        self.member = member


class RegisterDecision:
    """Initial value chosen for an extern register cell."""

    def __init__(self, instance: str, index: int, var: T.Term):
        self.instance = instance
        self.index = index
        self.var = var


class ConcolicBinding:
    """A placeholder variable awaiting concolic resolution (§5.4)."""

    def __init__(self, var: T.Term, func: str, arg_terms: list, concrete_fn,
                 fallback=None):
        self.var = var
        self.func = func
        self.arg_terms = list(arg_terms)
        self.concrete_fn = concrete_fn
        self.fallback = fallback  # optional callable for unsat repair

    def __repr__(self):
        return f"ConcolicBinding({self.func} -> {self.var!r})"


# ---------------------------------------------------------------------------
# Frontier snapshots (parallel exploration)
# ---------------------------------------------------------------------------

@dataclass
class FrontierSnapshot:
    """A picklable description of an unexplored frontier.

    Execution states themselves hold target closures and cannot cross a
    process boundary; their *branch-choice prefixes* can.  A worker
    rebuilds each state by replaying its prefix from the initial state
    (deterministic thanks to MintScope-scoped minting), then explores
    the subtree below it.  ``prefixes`` preserves discovery order.
    """

    program: str = ""
    target: str = ""
    prefixes: list[tuple[int, ...]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Execution state
# ---------------------------------------------------------------------------

class ExecutionState:
    _id_counter = [0]

    def __init__(self, program, target):
        ExecutionState._id_counter[0] += 1
        self.state_id = ExecutionState._id_counter[0]
        self.program = program
        self.target = target
        self.env: dict[str, SymVal] = {}
        self.path_cond = PathConds()
        self.packet = PacketModel()
        self.work: list = []          # continuation stack; top is the last element
        self.frames = FrameStack()
        self.coverage: set[int] = set()
        self.trace: list[str] = []
        self.cp_decisions: list = []
        self.concolics: list[ConcolicBinding] = []
        self.props: dict = {}
        self.next_index: dict[str, int] = {}
        self.finished = False
        self.blocked_reason: str | None = None  # test dropped (tainted port...)
        self.output_packets: list = []          # finalized by target
        # Branch-choice indices taken from the initial state to reach
        # this state (extended only at multi-successor steps).  Together
        # with fresh_counts (MintScope counters) this makes a state's
        # identity replayable in another process.
        self.choice_path: tuple[int, ...] = ()
        self.fresh_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(self) -> "ExecutionState":
        c = ExecutionState.__new__(ExecutionState)
        ExecutionState._id_counter[0] += 1
        c.state_id = ExecutionState._id_counter[0]
        STATE_STATS["state_clones"] += 1
        c.program = self.program
        c.target = self.target
        c.env = dict(self.env)
        c.path_cond = self.path_cond.clone()  # O(1): shares the spine
        c.packet = self.packet.clone()
        c.work = list(self.work)
        c.frames = self.frames.clone()        # O(1): copy-on-write
        c.coverage = set(self.coverage)
        c.trace = list(self.trace)
        c.cp_decisions = list(self.cp_decisions)
        c.concolics = list(self.concolics)
        c.props = dict(self.props)
        c.next_index = dict(self.next_index)
        c.finished = self.finished
        c.blocked_reason = self.blocked_reason
        c.output_packets = list(self.output_packets)
        c.choice_path = self.choice_path
        c.fresh_counts = dict(self.fresh_counts)
        return c

    # ------------------------------------------------------------------
    # Path constraints
    # ------------------------------------------------------------------

    def add_constraint(self, term: T.Term) -> bool:
        """Add a constraint; returns False if it is trivially false."""
        if term.is_const:
            return bool(term.payload)
        self.path_cond.append(term)
        return True

    # ------------------------------------------------------------------
    # Alias resolution
    # ------------------------------------------------------------------

    def push_frame(self, aliases: dict[str, str]) -> None:
        self.frames.push(aliases)
        self.work.append(PopFrame())

    def resolve_root(self, name: str) -> str:
        for frame in reversed(self.frames):
            if name in frame.aliases:
                return frame.aliases[name]
        return name

    def bind_local(self, name: str, path: str) -> None:
        self.frames.bind(name, path)

    # ------------------------------------------------------------------
    # Environment accessors (flattened dotted paths)
    # ------------------------------------------------------------------

    def read(self, path: str, width: int) -> SymVal:
        val = self.env.get(path)
        if val is None:
            # Reading an uninitialized variable: undefined value -> a
            # fresh fully-tainted variable (paper §5.3).  The target can
            # override via its uninitialized-value policy.
            val = self.target.uninitialized_value(self, path, width)
            self.env[path] = val
        return val

    def write(self, path: str, value: SymVal) -> None:
        self.env[path] = value

    def read_valid(self, path: str) -> SymVal:
        return self.read(f"{path}.$valid", 0)

    def write_valid(self, path: str, value: SymVal) -> None:
        self.env[f"{path}.$valid"] = value

    # -- structured helpers ---------------------------------------------

    def init_type(self, prefix: str, p4_type: P4Type, mode: str) -> None:
        """Initialize storage under ``prefix``.

        mode: "zero" | "taint" | "invalid" (headers: valid=0, fields
        untouched).
        """
        if isinstance(p4_type, HeaderType):
            self.write_valid(prefix, sym_bool(False))
            for fname, ftype in p4_type.fields:
                self._init_scalar(f"{prefix}.{fname}", ftype, mode)
            return
        if isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self.init_type(f"{prefix}.{fname}", ftype, mode)
            return
        if isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self.init_type(f"{prefix}[{i}]", p4_type.element, mode)
            self.next_index[prefix] = 0
            return
        self._init_scalar(prefix, p4_type, mode)

    def _init_scalar(self, path: str, p4_type: P4Type, mode: str) -> None:
        width = p4_type.bit_width()
        if mode == "zero":
            self.env[path] = sym_const(0, width) if width else sym_bool(False)
        elif mode == "taint":
            self.env[path] = fresh_tainted(path, width)
        elif mode == "invalid":
            self.env.pop(path, None)
        else:
            raise ValueError(f"unknown init mode {mode}")

    def copy_value(self, src: str, dst: str, p4_type: P4Type) -> None:
        """Structured copy src -> dst (used for param passing and
        whole-header assignment)."""
        if isinstance(p4_type, HeaderType):
            self.write_valid(dst, self.read_valid(src))
            for fname, ftype in p4_type.fields:
                self.env[f"{dst}.{fname}"] = self.read(
                    f"{src}.{fname}", ftype.bit_width()
                )
            return
        if isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self.copy_value(f"{src}.{fname}", f"{dst}.{fname}", ftype)
            return
        if isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self.copy_value(f"{src}[{i}]", f"{dst}[{i}]", p4_type.element)
            self.next_index[dst] = self.next_index.get(src, 0)
            return
        self.env[dst] = self.read(src, p4_type.bit_width())

    # ------------------------------------------------------------------
    # Work stack
    # ------------------------------------------------------------------

    def push_work(self, item) -> None:
        self.work.append(item)

    def push_stmts(self, stmts: list) -> None:
        for s in reversed(stmts):
            self.work.append(s)

    def pop_work(self):
        return self.work.pop() if self.work else None

    @property
    def has_work(self) -> bool:
        return bool(self.work)

    # ------------------------------------------------------------------
    # Tracing / coverage
    # ------------------------------------------------------------------

    def cover(self, stmt) -> None:
        self.coverage.add(stmt.stmt_id)

    def log(self, message: str) -> None:
        self.trace.append(message)

    def __repr__(self):
        return (
            f"ExecutionState(id={self.state_id}, work={len(self.work)}, "
            f"constraints={len(self.path_cond)}, finished={self.finished})"
        )
