"""Bug-finding campaign: the reproduction of the paper's Tbl. 2/3 loop.

For each (program, target) pair: generate tests with the oracle against
the *correct* semantics, plant one fault into the toolchain (fresh IR +
simulator), replay the tests, and classify any failure:

- the simulator raised -> an **exception** bug was exposed;
- outputs differed     -> a **wrong code** bug was exposed.

The campaign returns per-fault findings plus the Tbl. 2-shaped count
matrix (bug type x target).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import TestGen, load_program
from ..testback.runner import make_simulator, run_test
from .mutations import MUTATION_CATALOG, Mutation

__all__ = ["Finding", "CampaignResult", "run_campaign"]


@dataclass
class Finding:
    mutation: str
    bug_type: str
    target: str
    program: str
    detected: bool
    detected_as: str = ""   # "exception" | "wrong_output" | ...
    failing_test: int | None = None
    description: str = ""


@dataclass
class CampaignResult:
    findings: list = field(default_factory=list)

    def detected(self) -> list:
        return [f for f in self.findings if f.detected]

    def table2(self) -> dict:
        """Tbl. 2 shape: {target: {bug_type: count}, 'total': ...}."""
        out: dict = {}
        for f in self.detected():
            per_target = out.setdefault(f.target, {"exception": 0, "wrong_code": 0})
            per_target[f.bug_type] += 1
        totals = {"exception": 0, "wrong_code": 0}
        for per_target in out.values():
            totals["exception"] += per_target["exception"]
            totals["wrong_code"] += per_target["wrong_code"]
        out["total"] = totals
        return out

    def table3_rows(self) -> list[tuple]:
        """Tbl. 3 shape: per-bug detail rows."""
        rows = []
        for i, f in enumerate(self.detected(), start=1):
            label = f"{f.target.upper()}-{i}"
            rows.append((label, "Found", f.bug_type, f.description))
        return rows


def run_campaign(cases, seed: int = 1, max_tests: int = 25,
                 mutations: list[Mutation] | None = None) -> CampaignResult:
    """``cases``: list of (program_name, target_factory) pairs, where
    target_factory() builds the oracle-side target extension."""
    result = CampaignResult()
    mutations = mutations if mutations is not None else MUTATION_CATALOG
    for program_name, target_factory in cases:
        target = target_factory()
        clean_program = load_program(program_name)
        oracle = TestGen(clean_program, target=target, seed=seed)
        tests = oracle.run(max_tests=max_tests).tests
        for mutation in mutations:
            # Fresh IR and simulator per fault so faults never compound.
            program = load_program(program_name)
            simulator = make_simulator(target.name, program, seed=seed)
            applied = mutation.apply(program, simulator)
            finding = Finding(
                mutation=mutation.name,
                bug_type=mutation.bug_type,
                target=target.name,
                program=program_name,
                detected=False,
                description=mutation.description,
            )
            if applied:
                try:
                    for test in tests:
                        run = run_test(test, program, simulator)
                        if not run.passed:
                            finding.detected = True
                            finding.detected_as = run.kind
                            finding.failing_test = run.test_id
                            break
                finally:
                    unpatch = getattr(simulator, "_unpatch", None)
                    if unpatch is not None:
                        unpatch()
            result.findings.append(finding)
    return result
