"""Seeded toolchain faults for the bug-finding evaluation (Tbl. 2/3).

The paper counts real bugs P4Testgen exposed in the BMv2 and Tofino
toolchains.  We cannot ship those toolchains, so the reproduction plants
*seeded faults* of the same two classes in the concrete simulators and
checks that oracle-generated tests expose them:

- **exception** faults crash the simulated toolchain on specific inputs
  (header-stack out-of-bounds crash, zero-length-packet crash, name
  handling in the test back end — cf. BMV2-1, P4C-1, P4C-4);
- **wrong-code** faults silently mistranslate the program (swallowed
  ``table.apply``, wrong header-stack operation, dropped emit — cf.
  P4C-7, P4C-3/P4C-5).

A mutation either rewrites the freshly-loaded IR (a "compiler" bug) or
wraps simulator hooks (a "software model / test framework" bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import nodes as N
from ..interp.core import InterpError

__all__ = ["Mutation", "MUTATION_CATALOG", "mutations_for"]

EXCEPTION = "exception"
WRONG_CODE = "wrong_code"


@dataclass
class Mutation:
    name: str
    bug_type: str            # "exception" | "wrong_code"
    description: str
    # apply_ir(program) -> bool (False: not applicable to this program)
    apply_ir: object = None
    # wrap_sim(simulator) -> bool
    wrap_sim: object = None

    def apply(self, program, simulator) -> bool:
        """Plant the fault; returns False when the program has no site
        this fault applies to."""
        if self.apply_ir is not None:
            return bool(self.apply_ir(program))
        if self.wrap_sim is not None:
            return bool(self.wrap_sim(simulator))
        return False


# ---------------------------------------------------------------------------
# IR ("compiler") mutations
# ---------------------------------------------------------------------------

def _all_bodies(program):
    for control in program.controls.values():
        yield control.apply_stmts
        for action in control.actions.values():
            yield action.body
    for action in program.actions.values():
        yield action.body
    for parser in program.parsers.values():
        for state in parser.states.values():
            yield state.statements


def _find_stmt(program, predicate):
    """Find (body, index) of the first statement matching predicate,
    searching nested blocks."""
    def search(body):
        for i, s in enumerate(body):
            if predicate(s):
                return body, i
            if isinstance(s, N.IrIf):
                hit = search(s.then_stmts) or search(s.else_stmts)
                if hit:
                    return hit
            if isinstance(s, N.IrSwitch):
                for _labels, inner in s.cases:
                    hit = search(inner)
                    if hit:
                        return hit
        return None

    for body in _all_bodies(program):
        hit = search(body)
        if hit:
            return hit
    return None


def mut_swallow_table_apply(program) -> bool:
    """P4C-7 flavor: the compiler swallowed a table.apply()."""
    hit = _find_stmt(program, lambda s: isinstance(s, N.IrApplyTable))
    if hit is None:
        return False
    body, i = hit
    del body[i]
    return True


def mut_drop_emit(program) -> bool:
    """Deparser mistranslation: one emit call disappears."""
    hit = _find_stmt(
        program,
        lambda s: isinstance(s, N.IrMethodCall) and s.call.func == "emit",
    )
    if hit is None:
        return False
    body, i = hit
    del body[i]
    return True


def mut_flip_binop(program) -> bool:
    """Arithmetic mistranslation: the first '+' becomes '-'."""
    def flip(e):
        if isinstance(e, N.IrBinop) and e.op == "+":
            return N.IrBinop(p4_type=e.p4_type, op="-", left=e.left, right=e.right)
        return None

    return _rewrite_first_expr(program, flip)


def mut_constant_off_by_one(program) -> bool:
    """A literal in an assignment is emitted off by one."""
    def bump(e):
        if isinstance(e, N.IrConst) and e.p4_type is not None \
                and e.p4_type.is_scalar() and not isinstance(e.value, bool) \
                and e.p4_type.bit_width() > 1:
            mask = (1 << e.p4_type.bit_width()) - 1
            return N.IrConst(p4_type=e.p4_type, value=(e.value + 1) & mask)
        return None

    return _rewrite_first_expr(program, bump)


def mut_swap_if_branches(program) -> bool:
    """Branch polarity mistranslation."""
    hit = _find_stmt(
        program,
        lambda s: isinstance(s, N.IrIf) and s.then_stmts and s.else_stmts,
    )
    if hit is None:
        hit = _find_stmt(program, lambda s: isinstance(s, N.IrIf) and s.then_stmts)
    if hit is None:
        return False
    body, i = hit
    stmt = body[i]
    stmt.then_stmts, stmt.else_stmts = stmt.else_stmts, stmt.then_stmts
    return True


def mut_wrong_default_action(program) -> bool:
    """The control plane applies the wrong default action (first action
    ref instead of the declared default)."""
    for control in program.controls.values():
        for table in control.tables.values():
            if table.action_refs and table.default_action is not None:
                first = table.action_refs[0]
                if first.action != table.default_action.action:
                    table.default_action = N.IrActionRef(action=first.action, args=[])
                    return True
    return False


def _rewrite_first_expr(program, rewrite) -> bool:
    """Apply ``rewrite`` to the first matching expression inside any
    assignment; returns True if something changed."""
    def walk(e):
        if e is None or not isinstance(e, N.IrExpr):
            return None
        out = rewrite(e)
        if out is not None:
            return out
        for attr in ("left", "right", "operand", "cond", "then", "other", "expr"):
            child = getattr(e, attr, None)
            if isinstance(child, N.IrExpr):
                new_child = walk(child)
                if new_child is not None:
                    kwargs = {
                        k: getattr(e, k)
                        for k in e.__dataclass_fields__
                    }
                    kwargs[attr] = new_child
                    return type(e)(**kwargs)
        return None

    def scan(body):
        for s in body:
            if isinstance(s, N.IrAssign):
                new_value = walk(s.value)
                if new_value is not None:
                    s.value = new_value
                    return True
            elif isinstance(s, N.IrIf):
                if scan(s.then_stmts) or scan(s.else_stmts):
                    return True
            elif isinstance(s, N.IrSwitch):
                for _labels, inner in s.cases:
                    if scan(inner):
                        return True
        return False

    for body in _all_bodies(program):
        if scan(body):
            return True
    return False


# ---------------------------------------------------------------------------
# Simulator ("software model / test framework") mutations
# ---------------------------------------------------------------------------

def wrap_crash_on_stack_next(simulator) -> bool:
    """BMV2-1 flavor: accessing header stacks crashes the model."""
    original = simulator.packet_op

    def patched(ex, call):
        if call.func == "extract":
            lv = call.args[0]
            if isinstance(lv, N.FieldLV) and lv.field == "next":
                raise InterpError("BMV2-1: header stack access crashed the model")
        return original(ex, call)

    simulator.packet_op = patched
    return True


def wrap_crash_on_empty_packet(simulator) -> bool:
    """BMv2 zero-length quirk escalated to a crash (issue #977 flavor)."""
    original = simulator.process

    def patched(port, bits, width, config):
        if width == 0:
            raise_exc = InterpError("model crash: zero-length packet")
            result = type(original(port, 0, 8, config))()
            result.error = str(raise_exc)
            return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def wrap_crash_on_dollar_key(simulator) -> bool:
    """P4C-1/P4C-4 flavor: the test back end cannot process certain key
    names; keys carrying expression-ish names crash entry insertion."""
    original = simulator.process

    def patched(port, bits, width, config):
        for entry in config.entries:
            for name, _kind, _roles in entry.keys:
                if any(ch in name for ch in "$()[]"):
                    result = type(original(port, bits, width, Config_empty()))()
                    result.error = "test back end crashed on key name"
                    return result
        return original(port, bits, width, config)

    def Config_empty():
        from ..interp.core import Config

        return Config()

    simulator.process = patched
    return True


def wrap_wrong_drop_port(simulator) -> bool:
    """The model checks the wrong drop port constant (510 vs 511)."""
    if not hasattr(simulator, "process") or simulator.__class__.__name__ != \
            "Bmv2Simulator":
        return False
    from ..interp import bmv2

    original = simulator._run_pipeline

    def patched(ex, port, bits, width, recirc_depth):
        # Temporarily break the drop-port constant.
        saved = bmv2.DROP_PORT
        bmv2.DROP_PORT = 510
        try:
            return original(ex, port, bits, width, recirc_depth)
        finally:
            bmv2.DROP_PORT = saved

    simulator._run_pipeline = patched
    return True


def wrap_entry_mask_ignored(simulator) -> bool:
    """Control-plane software installs ternary entries ignoring masks."""
    from ..interp.core import BlockExecutor

    original = BlockExecutor._spec_matches

    def patched(self, spec, key_values, table):
        for (name, kind, roles), key_value in zip(spec.keys, key_values):
            if kind in ("ternary", "optional"):
                if key_value != roles.get("value", 0):
                    return False
            else:
                return original(self, spec, key_values, table)
        return True

    simulator._patched_spec_matches = patched
    # Applied per-executor by the campaign via this attribute.
    BlockExecutor._spec_matches = patched
    simulator._unpatch = lambda: setattr(
        BlockExecutor, "_spec_matches", original
    )
    return True


def wrap_crash_on_priority_entry(simulator) -> bool:
    """Test back end crashes on entries with priorities (STF flavor)."""
    original = simulator.process

    def patched(port, bits, width, config):
        for entry in config.entries:
            if entry.priority is not None:
                result = InterpResultFactory(original)
                result.error = "back end crashed on entry priority"
                return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def wrap_crash_on_range_entry(simulator) -> bool:
    """Test back end crashes on range entries (STF cannot express them,
    §6; a crash instead of a graceful error is the planted bug)."""
    original = simulator.process

    def patched(port, bits, width, config):
        for entry in config.entries:
            for _name, kind, _roles in entry.keys:
                if kind == "range":
                    result = InterpResultFactory(original)
                    result.error = "back end crashed on range entry"
                    return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def wrap_crash_on_wide_key(simulator) -> bool:
    """Control-plane software crashes serializing keys wider than 64
    bits (IPv6 addresses)."""
    original = simulator.process

    def patched(port, bits, width, config):
        for entry in config.entries:
            for _name, _kind, roles in entry.keys:
                if any(v > (1 << 64) - 1 for v in roles.values()):
                    result = InterpResultFactory(original)
                    result.error = "driver crashed on >64-bit key"
                    return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def wrap_crash_on_recirculate(simulator) -> bool:
    """Model crashes when a packet recirculates/resubmits."""
    if not hasattr(simulator, "_run_pipeline"):
        return False
    original = simulator._run_pipeline

    def patched(ex, port, bits, width, recirc_depth):
        if recirc_depth > 0:
            raise InterpError("model crash during recirculation")
        return original(ex, port, bits, width, recirc_depth)

    simulator._run_pipeline = patched
    return True


def wrap_crash_on_stack_pop(simulator) -> bool:
    """Wrong header-stack operation emitted (P4C-3/P4C-5 flavor): the
    model crashes executing pop_front."""
    from ..interp.core import BlockExecutor

    original = BlockExecutor._stack_push_pop

    def patched(self, call):
        if call.func == "pop_front":
            raise InterpError("wrong operation dereferencing header stack")
        return original(self, call)

    BlockExecutor._stack_push_pop = patched
    simulator._unpatch = lambda: setattr(
        BlockExecutor, "_stack_push_pop", original
    )
    return True


def wrap_crash_on_checksum(simulator) -> bool:
    """Model crashes computing checksums over odd-byte field lists."""
    if simulator.__class__.__name__ != "Bmv2Simulator":
        return False
    original = simulator._verify_checksum

    def patched(ex, call):
        fields = simulator._field_values(ex, call.args[1])
        total = sum(w for w, _v in fields)
        if total % 16 != 0:
            raise InterpError("model crash: unaligned checksum input")
        return original(ex, call)

    simulator._verify_checksum = patched
    return True


def wrap_crash_on_value_set(simulator) -> bool:
    """Control plane crashes inserting parser value-set members."""
    original = simulator.process

    def patched(port, bits, width, config):
        if config.value_sets:
            result = InterpResultFactory(original)
            result.error = "driver crashed inserting value-set member"
            return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def wrap_crash_on_register_init(simulator) -> bool:
    """Test framework crashes initializing registers."""
    original = simulator.process

    def patched(port, bits, width, config):
        if config.registers:
            result = InterpResultFactory(original)
            result.error = "framework crashed writing register init"
            return result
        return original(port, bits, width, config)

    simulator.process = patched
    return True


def InterpResultFactory(_original):
    from ..interp.core import InterpResult

    return InterpResult()


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

MUTATION_CATALOG: list[Mutation] = [
    Mutation("swallow-table-apply", WRONG_CODE,
             "compiler drops a table.apply() (cf. P4C-7)",
             apply_ir=mut_swallow_table_apply),
    Mutation("drop-emit", WRONG_CODE,
             "compiler drops a deparser emit (cf. P4C-6 flavor)",
             apply_ir=mut_drop_emit),
    Mutation("flip-binop", WRONG_CODE,
             "compiler emits '-' for '+' (wrong-operation flavor, cf. P4C-3)",
             apply_ir=mut_flip_binop),
    Mutation("const-off-by-one", WRONG_CODE,
             "compiler materializes a literal off by one",
             apply_ir=mut_constant_off_by_one),
    Mutation("swap-if-branches", WRONG_CODE,
             "compiler swaps branch polarity",
             apply_ir=mut_swap_if_branches),
    Mutation("wrong-default-action", WRONG_CODE,
             "control plane installs the wrong default action",
             apply_ir=mut_wrong_default_action),
    Mutation("crash-on-stack-next", EXCEPTION,
             "model crashes on header-stack access (cf. BMV2-1)",
             wrap_sim=wrap_crash_on_stack_next),
    Mutation("crash-on-empty-packet", EXCEPTION,
             "model crashes on zero-length packets (cf. issue #977)",
             wrap_sim=wrap_crash_on_empty_packet),
    Mutation("crash-on-odd-key-name", EXCEPTION,
             "test back end crashes on special key names (cf. P4C-1/P4C-4)",
             wrap_sim=wrap_crash_on_dollar_key),
    Mutation("wrong-drop-port", WRONG_CODE,
             "model uses the wrong drop-port constant",
             wrap_sim=wrap_wrong_drop_port),
    Mutation("crash-on-priority-entry", EXCEPTION,
             "test back end crashes on entry priorities",
             wrap_sim=wrap_crash_on_priority_entry),
    Mutation("crash-on-range-entry", EXCEPTION,
             "test back end crashes on range entries (cf. §6 STF gap)",
             wrap_sim=wrap_crash_on_range_entry),
    Mutation("crash-on-wide-key", EXCEPTION,
             "driver crashes serializing >64-bit keys",
             wrap_sim=wrap_crash_on_wide_key),
    Mutation("crash-on-recirculate", EXCEPTION,
             "model crashes during recirculation",
             wrap_sim=wrap_crash_on_recirculate),
    Mutation("crash-on-stack-pop", EXCEPTION,
             "wrong header-stack operation crashes the model (cf. P4C-3/P4C-5)",
             wrap_sim=wrap_crash_on_stack_pop),
    Mutation("crash-on-checksum", EXCEPTION,
             "model crashes on unaligned checksum inputs",
             wrap_sim=wrap_crash_on_checksum),
    Mutation("crash-on-value-set", EXCEPTION,
             "driver crashes inserting value-set members",
             wrap_sim=wrap_crash_on_value_set),
    Mutation("crash-on-register-init", EXCEPTION,
             "framework crashes initializing registers",
             wrap_sim=wrap_crash_on_register_init),
]


def mutations_for(bug_type: str | None = None) -> list[Mutation]:
    if bug_type is None:
        return list(MUTATION_CATALOG)
    return [m for m in MUTATION_CATALOG if m.bug_type == bug_type]
