"""Seeded-fault injection for the bug-finding evaluation (Tbl. 2/3)."""

from .campaign import CampaignResult, Finding, run_campaign
from .mutations import MUTATION_CATALOG, Mutation, mutations_for

__all__ = [
    "Mutation", "MUTATION_CATALOG", "mutations_for",
    "run_campaign", "CampaignResult", "Finding",
]
