"""Baseline tools for the Tbl. 5 comparison.

The paper positions P4Testgen against tools that either lack
*target-specific semantics* (Gauntlet, p4pktgen: they follow only the
P4 specification) or lack *target-agnosticism*.  We implement the two
qualitative baselines that can run on our substrate:

- :class:`SpecOnlyV1Model` — a Gauntlet/p4pktgen-style oracle: the same
  symbolic engine, but with whole-program semantics stripped: no
  traffic-manager drop port, no BMv2 zero-initialization (spec says
  "undefined"), no checksum modeling, no packet-size minimums.  Its
  tests are generated from the specification alone, so a fraction of
  them *fail* on the actual BMv2 model — exactly the gap Tbl. 5's
  "target-specific semantics" column captures.

The benchmark measures, per tool, the fraction of generated tests that
pass on the BMv2 simulator.
"""

from __future__ import annotations

from ..ir import nodes as N
from ..symex.value import fresh_var
from ..targets.v1model import DROP_PORT, SM, V1Model

__all__ = ["SpecOnlyV1Model"]


class SpecOnlyV1Model(V1Model):
    """v1model with the target-specific layer removed (spec-only)."""

    NAME = "spec-only"

    # The P4 spec says uninitialized reads are *undefined*; a spec-only
    # tool without taint tracking assumes it may choose the value.
    def uninitialized_value(self, state, path, width):
        return fresh_var(path, width)

    local_init_mode = "invalid"  # locals stay undefined until written

    # No knowledge of BMv2's drop port: every egress_spec forwards.
    def _traffic_manager(self, state):
        egress_spec = state.read(f"{SM}.egress_spec", 9)
        state.write(f"{SM}.egress_port", egress_spec)
        return [state]

    # No extern modeling: checksums and hashes are skipped entirely
    # (the spec does not define their semantics).
    def _ext_verify_checksum(self, state, call):
        return [state]

    def _ext_update_checksum(self, state, call):
        return [state]

    def _ext_hash(self, state, call):
        from ..symex.stepper import resolve_lvalue

        out_lv = call.args[0]
        if isinstance(out_lv, N.IrLValExpr):
            out_lv = out_lv.lval
        path, p4_type = resolve_lvalue(state, out_lv)
        state.write(path, fresh_var("hash", p4_type.bit_width()))
        return [state]

    def _ext_random(self, state, call):
        from ..symex.stepper import resolve_lvalue

        lv = call.args[0]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = resolve_lvalue(state, lv)
        # No taint tracking: the value is assumed free.
        state.write(path, fresh_var("random", p4_type.bit_width()))
        return [state]
