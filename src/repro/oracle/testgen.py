"""The public test-oracle API (the paper's command-line entry point).

::

    from repro import TestGen, TestGenConfig, load_program
    from repro.targets import V1Model

    gen = TestGen(load_program("fig1a"), target=V1Model(),
                  config=TestGenConfig(seed=1, max_tests=10, jobs=4))
    for test in gen.iter_tests():     # streams as paths finalize
        ...
    result = gen.run()                # or collect everything at once
    print(result.coverage_report())
    print(result.emit("stf"))

The pre-config keyword style (``TestGen(prog, target, seed=1)``) keeps
working but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import TestGenConfig, config_from_legacy
from ..ir import load_ir
from ..ir.nodes import IrProgram
from ..symex.explorer import Explorer
from ..targets.base import TargetExtension

__all__ = ["TestGen", "TestGenConfig", "TestGenResult", "load_program"]


def load_program(name_or_source: str, source_name: str | None = None) -> IrProgram:
    """Load a P4 program: a corpus name (``"fig1a"``), a path to a .p4
    file, or raw source text."""
    text = name_or_source
    name = source_name or "<input>"
    if "\n" not in name_or_source:
        from ..programs import get_program_source, program_path

        try:
            text = get_program_source(name_or_source)
            name = source_name or f"{name_or_source}.p4"
        except KeyError:
            import pathlib

            path = pathlib.Path(name_or_source)
            if path.exists():
                text = path.read_text()
                name = source_name or path.name
    return load_ir(text, name)


@dataclass
class TestGenResult:
    __test__ = False  # not a pytest class, despite the name

    tests: list = field(default_factory=list)
    coverage: object = None
    stats: object = None
    target: str = ""
    program: str = ""

    @property
    def statement_coverage(self) -> float:
        return self.coverage.statement_percent

    def coverage_report(self) -> str:
        return self.coverage.report()

    def emit(self, backend: str = "stf") -> str:
        """Render all tests in the chosen back-end format."""
        from ..testback import get_backend

        return get_backend(backend).render_suite(self.tests)


class TestGen:
    """A test oracle instance for one program on one target."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, program: IrProgram | str, target: TargetExtension,
                 *, config: TestGenConfig | None = None, **legacy):
        if legacy:
            config = config_from_legacy(config, legacy, "TestGen()")
        if config is None:
            config = TestGenConfig()
        if isinstance(program, str):
            program = load_program(program)
        self.program = program
        self.target = target
        self.config = config
        self._last_run = None

    # Pre-config attribute access keeps working (read-only views).
    @property
    def seed(self):
        return self.config.seed

    @property
    def strategy(self):
        return self.config.strategy

    @property
    def prune_unsat(self):
        return self.config.prune_unsat

    @property
    def randomize_values(self):
        return self.config.randomize_values

    def explorer(self, config: TestGenConfig | None = None,
                 **legacy) -> Explorer:
        """A sequential :class:`Explorer` over this oracle's program.

        Uses this oracle's config unless an override ``config`` is
        given; deprecated keyword overrides are folded on top."""
        base = config if config is not None else self.config
        if legacy:
            base = config_from_legacy(base, legacy, "TestGen.explorer()")
        return Explorer(self.program, self.target, config=base)

    def iter_tests(self, config: TestGenConfig | None = None):
        """Stream tests as paths finalize (the engine handles
        ``config.jobs > 1`` transparently).  After exhaustion the run's
        coverage and stats are available via :attr:`last_run`."""
        from ..engine.orchestrator import ProgramRun

        cfg = config if config is not None else self.config
        run = ProgramRun(self.program, self.target, cfg)
        self._last_run = run
        yield from run.iter_tests()

    @property
    def last_run(self):
        """The :class:`repro.engine.ProgramRun` behind the most recent
        ``iter_tests``/``run`` call (None before any run)."""
        return self._last_run

    def run(self, max_tests: int | None = None,
            max_paths: int | None = None,
            stop_at_full_coverage: bool = False) -> TestGenResult:
        """Collect a full suite.  The optional arguments override the
        corresponding config fields for this run only."""
        overrides = {}
        if max_tests is not None:
            overrides["max_tests"] = max_tests
        if max_paths is not None:
            overrides["max_paths"] = max_paths
        if stop_at_full_coverage:
            overrides["stop_at_full_coverage"] = True
        cfg = self.config.replace(**overrides) if overrides else self.config
        tests = list(self.iter_tests(config=cfg))
        run = self._last_run
        return TestGenResult(
            tests=tests,
            coverage=run.coverage,
            stats=run.stats,
            target=self.target.name,
            program=self.program.source_name,
        )
