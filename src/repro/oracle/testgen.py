"""The public test-oracle API (the paper's command-line entry point).

::

    from repro import TestGen, load_program
    from repro.targets import V1Model

    gen = TestGen(load_program("fig1a"), target=V1Model(), seed=1)
    result = gen.run(max_tests=10)
    print(result.coverage_report())
    print(result.emit("stf"))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import load_ir
from ..ir.nodes import IrProgram
from ..symex.explorer import Explorer
from ..targets.base import TargetExtension

__all__ = ["TestGen", "TestGenResult", "load_program"]


def load_program(name_or_source: str, source_name: str | None = None) -> IrProgram:
    """Load a P4 program: a corpus name (``"fig1a"``), a path to a .p4
    file, or raw source text."""
    text = name_or_source
    name = source_name or "<input>"
    if "\n" not in name_or_source:
        from ..programs import get_program_source, program_path

        try:
            text = get_program_source(name_or_source)
            name = source_name or f"{name_or_source}.p4"
        except KeyError:
            import pathlib

            path = pathlib.Path(name_or_source)
            if path.exists():
                text = path.read_text()
                name = source_name or path.name
    return load_ir(text, name)


@dataclass
class TestGenResult:
    __test__ = False  # not a pytest class, despite the name

    tests: list = field(default_factory=list)
    coverage: object = None
    stats: object = None
    target: str = ""
    program: str = ""

    @property
    def statement_coverage(self) -> float:
        return self.coverage.statement_percent

    def coverage_report(self) -> str:
        return self.coverage.report()

    def emit(self, backend: str = "stf") -> str:
        """Render all tests in the chosen back-end format."""
        from ..testback import get_backend

        return get_backend(backend).render_suite(self.tests)


class TestGen:
    """A test oracle instance for one program on one target."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, program: IrProgram | str, target: TargetExtension,
                 *, seed: int | None = None, strategy: str = "dfs",
                 prune_unsat: bool = True, randomize_values: bool = False):
        if isinstance(program, str):
            program = load_program(program)
        self.program = program
        self.target = target
        self.seed = seed
        self.strategy = strategy
        self.prune_unsat = prune_unsat
        self.randomize_values = randomize_values

    def explorer(self, **kwargs) -> Explorer:
        kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("strategy", self.strategy)
        kwargs.setdefault("prune_unsat", self.prune_unsat)
        kwargs.setdefault("randomize_values", self.randomize_values)
        return Explorer(self.program, self.target, **kwargs)

    def run(self, max_tests: int | None = None,
            max_paths: int | None = None,
            stop_at_full_coverage: bool = False) -> TestGenResult:
        explorer = self.explorer(
            max_tests=max_tests,
            max_paths=max_paths,
            stop_at_full_coverage=stop_at_full_coverage,
        )
        tests = list(explorer.run())
        return TestGenResult(
            tests=tests,
            coverage=explorer.coverage,
            stats=explorer.stats,
            target=self.target.name,
            program=self.program.source_name,
        )
