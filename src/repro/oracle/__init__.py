"""Public oracle API."""

from .testgen import TestGen, TestGenResult, load_program

__all__ = ["TestGen", "TestGenResult", "load_program"]
