"""Public oracle API."""

from ..config import TestGenConfig
from .testgen import TestGen, TestGenResult, load_program

__all__ = ["TestGen", "TestGenConfig", "TestGenResult", "load_program"]
