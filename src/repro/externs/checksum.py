"""Concrete checksum and hash implementations.

These are the "actual extern implementation" half of concolic execution
(paper §5.4): the symbolic executor leaves a placeholder variable for
the result, then calls one of these functions on concrete argument
values pulled from the SMT model.  The concrete interpreters in
:mod:`repro.interp` call the same functions, which is what makes the
generated tests pass end-to-end.

Data is passed as a list of ``(width, value)`` pairs describing the
fields being checksummed, in order.
"""

from __future__ import annotations

__all__ = [
    "pack_fields",
    "ones_complement16",
    "xor16",
    "identity_hash",
    "crc8",
    "crc16",
    "crc32",
    "crc64",
    "CHECKSUM_ALGORITHMS",
]


def pack_fields(fields: list[tuple[int, int]]) -> tuple[int, int]:
    """Concatenate (width, value) pairs into one integer; returns
    (total_width, value)."""
    total = 0
    value = 0
    for width, v in fields:
        value = (value << width) | (v & ((1 << width) - 1))
        total += width
    return total, value


def _to_bytes(fields: list[tuple[int, int]]) -> bytes:
    total, value = pack_fields(fields)
    nbytes = (total + 7) // 8
    if nbytes == 0:
        return b""
    value <<= nbytes * 8 - total  # pad on the right, wire order
    return value.to_bytes(nbytes, "big")


def ones_complement16(fields: list[tuple[int, int]], out_width: int = 16) -> int:
    """The Internet checksum (RFC 1071), aka v1model ``csum16``."""
    data = _to_bytes(fields)
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    result = (~total) & 0xFFFF
    return result & ((1 << out_width) - 1)


def xor16(fields: list[tuple[int, int]], out_width: int = 16) -> int:
    data = _to_bytes(fields)
    if len(data) % 2:
        data += b"\x00"
    out = 0
    for i in range(0, len(data), 2):
        out ^= (data[i] << 8) | data[i + 1]
    return out & ((1 << out_width) - 1)


def identity_hash(fields: list[tuple[int, int]], out_width: int = 16) -> int:
    _total, value = pack_fields(fields)
    return value & ((1 << out_width) - 1)


def _crc_generic(data: bytes, width: int, poly: int, init: int,
                 refin: bool, refout: bool, xorout: int) -> int:
    def reflect(v: int, bits: int) -> int:
        out = 0
        for i in range(bits):
            if (v >> i) & 1:
                out |= 1 << (bits - 1 - i)
        return out

    topbit = 1 << (width - 1)
    mask = (1 << width) - 1
    crc = init
    for byte in data:
        if refin:
            byte = reflect(byte, 8)
        crc ^= byte << (width - 8)
        for _ in range(8):
            if crc & topbit:
                crc = ((crc << 1) ^ poly) & mask
            else:
                crc = (crc << 1) & mask
    if refout:
        crc = reflect(crc, width)
    return (crc ^ xorout) & mask


def crc8(fields: list[tuple[int, int]], out_width: int = 8) -> int:
    value = _crc_generic(_to_bytes(fields), 8, 0x07, 0x00, False, False, 0x00)
    return value & ((1 << out_width) - 1)


def crc16(fields: list[tuple[int, int]], out_width: int = 16) -> int:
    # CRC-16/ARC, the polynomial BMv2 uses for HashAlgorithm.crc16.
    value = _crc_generic(_to_bytes(fields), 16, 0x8005, 0x0000, True, True, 0x0000)
    return value & ((1 << out_width) - 1)


def crc32(fields: list[tuple[int, int]], out_width: int = 32) -> int:
    import zlib

    value = zlib.crc32(_to_bytes(fields)) & 0xFFFFFFFF
    return value & ((1 << out_width) - 1)


def crc64(fields: list[tuple[int, int]], out_width: int = 64) -> int:
    value = _crc_generic(
        _to_bytes(fields), 64, 0x42F0E1EBA9EA3693, 0x0, False, False, 0x0
    )
    return value & ((1 << out_width) - 1)


# Names match the v1model HashAlgorithm / tna HashAlgorithm_t members.
CHECKSUM_ALGORITHMS = {
    "csum16": ones_complement16,
    "xor16": xor16,
    "identity": identity_hash,
    "IDENTITY": identity_hash,
    "crc8": crc8,
    "CRC8": crc8,
    "crc16": crc16,
    "crc16_custom": crc16,
    "CRC16": crc16,
    "crc32": crc32,
    "crc32_custom": crc32,
    "CRC32": crc32,
    "crc64": crc64,
    "CRC64": crc64,
    "random": identity_hash,   # "random" hash is still deterministic per flow
    "RANDOM": identity_hash,
    "CUSTOM": crc16,
}
