"""Extern function library: concrete implementations shared by the
concolic resolver and the reference interpreters."""

from .checksum import CHECKSUM_ALGORITHMS, ones_complement16

__all__ = ["CHECKSUM_ALGORITHMS", "ones_complement16"]
