"""Run configuration for test generation.

:class:`TestGenConfig` is the single, frozen description of how a test
generation run behaves.  It replaces the keyword arguments that used to
be duplicated (with drifting defaults) across ``TestGen.__init__``,
``TestGen.explorer()``, ``Explorer.__init__`` and the CLI: construct
one config, pass it anywhere.

::

    from repro import TestGen, TestGenConfig, load_program
    from repro.targets import V1Model

    cfg = TestGenConfig(seed=1, max_tests=10, jobs=4)
    gen = TestGen(load_program("fig1a"), target=V1Model(), config=cfg)
    for test in gen.iter_tests():
        ...

The legacy keyword arguments keep working through
:func:`config_from_legacy`, which folds them into a config and emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace as _dc_replace

__all__ = ["TestGenConfig", "config_from_legacy"]


@dataclass(frozen=True)
class TestGenConfig:
    """Immutable configuration for one test-generation run.

    Attributes:
        seed: RNG seed; also recorded in every emitted test.
        strategy: frontier policy — ``"dfs"`` (default), ``"random"``,
            or ``"greedy"``.  Only ``"dfs"`` supports ``jobs > 1`` when
            sharding a single program.
        prune_unsat: drop infeasible successors at branch points.
        randomize_values: prefer random (seeded) values for otherwise
            unconstrained control-plane arguments (§3).
        max_tests: stop after this many emitted tests (None = no limit).
        max_paths: stop after this many finished paths (None = no limit).
        stop_at_full_coverage: stop once every statement is covered.
        coverage_goal: stop once statement coverage reaches this
            percentage (None = no goal).  Like the other stop limits it
            is checked at iteration boundaries, so ``jobs > 1`` runs
            truncate on exactly the same test as ``jobs=1``.
        jobs: worker processes; 1 means fully in-process.
        max_steps: safety cap on symbolic-execution steps.  With
            ``jobs > 1`` this is enforced per process, not globally.
        concolic_enabled / concolic_max_rounds / concolic_fallback:
            concolic-resolution knobs (§5.4).
        solve_cache: memoize canonicalized solver queries.  Required
            for ``jobs > 1`` (it is what makes models reproducible
            across processes).
        cache_capacity: max cached solver entries (None = unbounded,
            0 = canonical solving without memoization).
        elide: enable the query-elision pipeline (word-level rewrite,
            model reuse, UNSAT subsumption — see ``smt/elide.py``) in
            front of the SAT core.  Elision never changes any answer or
            emitted test, only how many checks reach bit-blasting.
        elide_models: satisfying assignments kept for model reuse (per
            solver).
        elide_unsat: proven-UNSAT conjunct sets kept for subsumption
            (per solver).
        intern: hash-cons terms in a process-wide weak pool (see
            ``smt/terms.py``).  Enables the O(1) identity fast paths,
            tid-keyed memo tables and the shared bit-blast cache.
            Interning never changes any emitted test — equality stays
            structural either way — only how fast terms compare and how
            much CNF is rebuilt; ``False`` is the ablation baseline.
        incremental: run feasibility pruning on the incremental status
            plane — the pruning solver's assertion levels mirror the
            DFS stack, so learned clauses and most of the SAT trail
            survive across sibling checks (§6 "incremental solving").
            Only statuses ride the incremental database; models always
            come from canonical solves, so incremental on/off suites
            are byte-identical at any ``jobs``.  Requires
            ``solve_cache``; ignored when a portfolio is configured.
        solver: primary solver back-end name (``"native"`` default; any
            name accepted by :func:`repro.smt.backends.register_solver`).
            Non-native primaries bind their own models, so suites are
            deterministic per back end but differ across back ends.
        portfolio: external back-end names raced against the native
            search on hard queries (see ``smt/backends.py``).  Racing
            never changes emitted tests — verdicts are objective and
            models always come from the primary — so portfolio on/off
            suites are byte-identical.  Requires ``solve_cache``.
        portfolio_budget: native conflicts before a query counts as
            hard and the portfolio race starts.
        solver_crosscheck: differentially validate a deterministic
            sample of SAT answers — verify each emitted model against
            its constraint set and re-solve on a second back end
            (the first portfolio member, when present).
        batch_replay: replay generated suites through the lane-packed
            batch interpreter (``repro.interp.batch``) instead of one
            scalar simulator per test.  Classifications are identical
            either way; off disables only the fast path.
    """

    __test__ = False  # not a pytest class, despite the name

    seed: int | None = None
    strategy: str = "dfs"
    prune_unsat: bool = True
    randomize_values: bool = False
    max_tests: int | None = None
    max_paths: int | None = None
    stop_at_full_coverage: bool = False
    coverage_goal: float | None = None
    jobs: int = 1
    max_steps: int = 2_000_000
    concolic_enabled: bool = True
    concolic_max_rounds: int = 4
    concolic_fallback: bool = True
    solve_cache: bool = True
    cache_capacity: int | None = None
    elide: bool = True
    elide_models: int = 8
    elide_unsat: int = 64
    intern: bool = True
    incremental: bool = True
    solver: str = "native"
    portfolio: tuple[str, ...] = ()
    portfolio_budget: int = 256
    solver_crosscheck: bool = False
    batch_replay: bool = True

    def replace(self, **overrides) -> "TestGenConfig":
        """A copy of this config with ``overrides`` applied."""
        return _dc_replace(self, **overrides)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, values: dict) -> "TestGenConfig":
        values = dict(values)
        # JSON round-trips (and permissive callers) hand lists; the
        # frozen dataclass wants a hashable tuple.
        if values.get("portfolio") is not None:
            values["portfolio"] = tuple(values["portfolio"])
        return cls(**values)


_FIELD_NAMES = frozenset(f.name for f in fields(TestGenConfig))


def config_from_legacy(config: TestGenConfig | None, legacy: dict,
                       where: str) -> TestGenConfig:
    """Fold deprecated keyword arguments into a :class:`TestGenConfig`.

    ``legacy`` maps old keyword names to values; every key must be a
    config field.  Emits one :class:`DeprecationWarning` naming the
    offending keywords (callers two frames up, past the shim).
    """
    unknown = sorted(set(legacy) - _FIELD_NAMES)
    if unknown:
        raise TypeError(f"{where} got unexpected keyword arguments {unknown}")
    base = config if config is not None else TestGenConfig()
    if not legacy:
        return base
    warnings.warn(
        f"passing {', '.join(sorted(legacy))} to {where} is deprecated; "
        "pass config=TestGenConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return base.replace(**legacy)
