"""Concrete (big-step) evaluation of SMT terms under a variable assignment.

Used by the concolic-execution loop to compute extern results, by model
validation after a SAT answer, by the query-elision layer's model-reuse
check, and by the property-based tests that cross-check the bit-blaster
against direct evaluation.

Two entry points with different laziness/strictness trade-offs:

- :func:`evaluate` — full-DAG evaluation, raises
  :class:`EvaluationError` on unbound variables.  The reference
  semantics.
- :func:`holds` / :func:`all_hold` — boolean satisfaction checks for
  the elision hot loop: AND/OR/NOT short-circuit (a failing conjunct
  stops evaluation immediately, so a non-matching cached model is
  rejected after one leaf), and unbound variables default to zero/False
  instead of raising, which makes any partial witness a total one.

Both paths are iterative (explicit work stacks), so arbitrarily deep
AND/OR chains and term DAGs evaluate without hitting the recursion
limit.
"""

from __future__ import annotations

from .terms import Term

__all__ = ["evaluate", "holds", "all_hold", "EvaluationError"]


class EvaluationError(Exception):
    """A term could not be evaluated (unbound variable)."""


def _to_signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        v -= 1 << width
    return v


def evaluate(term: Term, assignment: dict[Term, int] | None = None):
    """Evaluate ``term`` to an ``int`` (bitvector) or ``bool``.

    ``assignment`` maps variable terms to concrete values; booleans may
    be given as bool or 0/1.  Raises :class:`EvaluationError` for
    variables missing from the assignment.
    """
    return _evaluate_dag(term, assignment or {}, {}, strict=True)


def holds(term: Term, assignment: dict[Term, int] | None = None,
          cache: dict | None = None) -> bool:
    """Does the boolean ``term`` evaluate true under ``assignment``?

    Short-circuits through AND/OR/NOT structure; unbound variables
    default to ``0``/``False`` (so a witness over a variable subset is
    interpreted as its zero-completion).  ``cache`` may be shared
    across calls evaluating under the *same* assignment to reuse
    sub-term values.
    """
    return _holds(term, assignment or {}, {} if cache is None else cache)


def all_hold(terms, assignment: dict[Term, int] | None = None) -> bool:
    """Short-circuiting conjunction check with a shared sub-term cache."""
    assignment = assignment or {}
    cache: dict[int, int | bool] = {}  # keyed by Term.tid
    for t in terms:
        if not _holds(t, assignment, cache):
            return False
    return True


# ---------------------------------------------------------------------------
# Short-circuit boolean path
# ---------------------------------------------------------------------------

def _holds(root: Term, assignment, cache) -> bool:
    """Iterative short-circuit evaluation of a boolean term.

    Frames exist only for AND/OR nodes: ``(is_and, negated, args_iter)``.
    NOT chains are folded into the polarity bit on the way down; every
    other operator is a "leaf" handed to the strict DAG evaluator.
    """
    frames: list = []
    nxt = (root, False)        # (node, negated) scheduled for evaluation
    result = True              # last finished boolean (placeholder)
    while True:
        if nxt is not None:
            node, neg = nxt
            nxt = None
            while node.op == "not":
                node = node.args[0]
                neg = not neg
            op = node.op
            if op == "and" or op == "or":
                is_and = op == "and"
                frames.append((is_and, neg, iter(node.args)))
                result = is_and  # neutral element: descend into arg #1
            else:
                result = bool(_evaluate_dag(node, assignment, cache,
                                            strict=False)) != neg
            continue
        if not frames:
            return result
        is_and, neg, args_it = frames[-1]
        if result == is_and:   # non-deciding child: keep going
            arg = next(args_it, None)
            if arg is None:    # ran out of args: the neutral value wins
                frames.pop()
                result = is_and != neg
            else:
                nxt = (arg, False)
        else:                  # deciding child: short-circuit this frame
            frames.pop()
            result = (not is_and) != neg


# ---------------------------------------------------------------------------
# Strict full-DAG path
# ---------------------------------------------------------------------------

def _evaluate_dag(root: Term, assignment, cache, strict: bool):
    """Single-pass iterative postorder evaluation with memoization.

    Each node is visited at most twice: once to push its uncached
    children, once (when they have all resolved) to compute its own
    value.  The memo is keyed by intern id (:attr:`Term.tid`) — an O(1)
    int key that never collides, even with interning disabled.
    ``strict`` controls unbound-variable behavior: raise (reference
    semantics) versus default to zero/False (witness completion).
    """
    if root.tid in cache:
        return cache[root.tid]
    stack = [root]
    while stack:
        t = stack[-1]
        if t.tid in cache:
            stack.pop()
            continue
        ready = True
        for a in t.args:
            if a.tid not in cache:
                stack.append(a)
                ready = False
        if not ready:
            continue
        stack.pop()
        cache[t.tid] = _apply(t, assignment, cache, strict)
    return cache[root.tid]


def _apply(t: Term, assignment, cache, strict):
    op = t.op
    if op == "const":
        return t.payload
    if op == "var":
        if t in assignment:
            v = assignment[t]
            if t.width == 0:
                return bool(v)
            return int(v) & ((1 << t.width) - 1)
        if strict:
            raise EvaluationError(f"unbound variable {t!r}")
        return False if t.width == 0 else 0
    args = [cache[a.tid] for a in t.args]
    mask = (1 << t.width) - 1 if t.width else 0
    if op == "not":
        return not args[0]
    if op == "and":
        return all(args)
    if op == "or":
        return any(args)
    if op == "xor":
        return bool(args[0]) != bool(args[1])
    if op == "eq":
        return args[0] == args[1]
    if op == "ult":
        return args[0] < args[1]
    if op == "slt":
        w = t.args[0].width
        return _to_signed(args[0], w) < _to_signed(args[1], w)
    if op == "bvnot":
        return ~args[0] & mask
    if op == "bvand":
        return args[0] & args[1]
    if op == "bvor":
        return args[0] | args[1]
    if op == "bvxor":
        return args[0] ^ args[1]
    if op == "bvadd":
        return (args[0] + args[1]) & mask
    if op == "bvsub":
        return (args[0] - args[1]) & mask
    if op == "bvmul":
        return (args[0] * args[1]) & mask
    if op == "bvudiv":
        return mask if args[1] == 0 else args[0] // args[1]
    if op == "bvurem":
        return args[0] if args[1] == 0 else args[0] % args[1]
    if op == "bvshl":
        return (args[0] << args[1]) & mask if args[1] < t.width else 0
    if op == "bvlshr":
        return args[0] >> args[1] if args[1] < t.width else 0
    if op == "bvashr":
        w = t.width
        sh = min(args[1], w - 1)
        return (_to_signed(args[0], w) >> sh) & mask
    if op == "concat":
        out = 0
        for child, v in zip(t.args, args):
            out = (out << child.width) | v
        return out
    if op == "extract":
        hi, lo = t.payload
        return (args[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == "zext":
        return args[0]
    if op == "sext":
        w0 = t.args[0].width
        return _to_signed(args[0], w0) & mask
    if op == "ite":
        return args[1] if args[0] else args[2]
    raise EvaluationError(f"unknown operator {op}")
