"""Concrete (big-step) evaluation of SMT terms under a variable assignment.

Used by the concolic-execution loop to compute extern results, by model
validation after a SAT answer, and by the property-based tests that
cross-check the bit-blaster against direct evaluation.
"""

from __future__ import annotations

from .terms import Term

__all__ = ["evaluate", "EvaluationError"]


class EvaluationError(Exception):
    """A term could not be evaluated (unbound variable)."""


def _to_signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        v -= 1 << width
    return v


def evaluate(term: Term, assignment: dict[Term, int] | None = None):
    """Evaluate ``term`` to an ``int`` (bitvector) or ``bool``.

    ``assignment`` maps variable terms to concrete values; booleans may
    be given as bool or 0/1.  Raises :class:`EvaluationError` for
    variables missing from the assignment.
    """
    assignment = assignment or {}
    cache: dict[Term, int | bool] = {}

    def go(t: Term):
        if t in cache:
            return cache[t]
        res = _eval(t, go, assignment)
        cache[t] = res
        return res

    # Iterative postorder to avoid recursion limits on deep term DAGs.
    order: list[Term] = []
    seen: set[Term] = set()
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for a in node.args:
            stack.append((a, False))
    for node in order:
        go(node)
    return cache[term]


def _eval(t: Term, go, assignment):
    op = t.op
    if op == "const":
        return t.payload
    if op == "var":
        if t in assignment:
            v = assignment[t]
            if t.width == 0:
                return bool(v)
            return int(v) & ((1 << t.width) - 1)
        raise EvaluationError(f"unbound variable {t!r}")
    args = [go(a) for a in t.args]
    mask = (1 << t.width) - 1 if t.width else 0
    if op == "not":
        return not args[0]
    if op == "and":
        return all(args)
    if op == "or":
        return any(args)
    if op == "xor":
        return bool(args[0]) != bool(args[1])
    if op == "eq":
        return args[0] == args[1]
    if op == "ult":
        return args[0] < args[1]
    if op == "slt":
        w = t.args[0].width
        return _to_signed(args[0], w) < _to_signed(args[1], w)
    if op == "bvnot":
        return ~args[0] & mask
    if op == "bvand":
        return args[0] & args[1]
    if op == "bvor":
        return args[0] | args[1]
    if op == "bvxor":
        return args[0] ^ args[1]
    if op == "bvadd":
        return (args[0] + args[1]) & mask
    if op == "bvsub":
        return (args[0] - args[1]) & mask
    if op == "bvmul":
        return (args[0] * args[1]) & mask
    if op == "bvudiv":
        return mask if args[1] == 0 else args[0] // args[1]
    if op == "bvurem":
        return args[0] if args[1] == 0 else args[0] % args[1]
    if op == "bvshl":
        return (args[0] << args[1]) & mask if args[1] < t.width else 0
    if op == "bvlshr":
        return args[0] >> args[1] if args[1] < t.width else 0
    if op == "bvashr":
        w = t.width
        sh = min(args[1], w - 1)
        return (_to_signed(args[0], w) >> sh) & mask
    if op == "concat":
        out = 0
        for child, v in zip(t.args, args):
            out = (out << child.width) | v
        return out
    if op == "extract":
        hi, lo = t.payload
        return (args[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == "zext":
        return args[0]
    if op == "sext":
        w0 = t.args[0].width
        return _to_signed(args[0], w0) & mask
    if op == "ite":
        return args[1] if args[0] else args[2]
    raise EvaluationError(f"unknown operator {op}")
