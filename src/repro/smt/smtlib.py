"""SMT-LIB2 serialization of the term DAG.

Used by the external SMT back ends (:mod:`repro.smt.backends`) to hand
a constraint set to a real solver (Z3, cvc5, ...) over the standard
``QF_BV`` text format.  Shared subterms are emitted once through
``let``-bindings, so the output stays linear in the DAG size.

Only serialization lives here; model *parsing* is back-end specific and
stays with the back end.
"""

from __future__ import annotations

from .terms import Term, free_vars

__all__ = ["to_smtlib2", "smtlib_symbol"]

# op -> SMT-LIB2 operator for the plain n-ary cases.
_OPS = {
    "and": "and",
    "or": "or",
    "not": "not",
    "xor": "xor",
    "eq": "=",
    "ite": "ite",
    "ult": "bvult",
    "slt": "bvslt",
    "bvadd": "bvadd",
    "bvsub": "bvsub",
    "bvmul": "bvmul",
    "bvudiv": "bvudiv",
    "bvurem": "bvurem",
    "bvand": "bvand",
    "bvor": "bvor",
    "bvxor": "bvxor",
    "bvnot": "bvnot",
    "bvshl": "bvshl",
    "bvlshr": "bvlshr",
    "bvashr": "bvashr",
    "concat": "concat",
}


def smtlib_symbol(name) -> str:
    """A quoted SMT-LIB2 symbol for an arbitrary variable name."""
    text = str(name)
    if text.isidentifier():
        return text
    return "|" + text.replace("|", "_").replace("\\", "_") + "|"


def _render(term: Term, shared: dict[Term, str]) -> str:
    """Render one node, referring to let-bound shared subterms by name."""
    label = shared.get(term)
    if label is not None:
        return label
    return _render_node(term, shared)


def _render_node(term: Term, shared: dict[Term, str]) -> str:
    op = term.op
    if op == "const":
        if term.width == 0:
            return "true" if term.payload else "false"
        return f"(_ bv{term.payload} {term.width})"
    if op == "var":
        return smtlib_symbol(term.payload)
    args = " ".join(_render(a, shared) for a in term.args)
    if op == "extract":
        hi, lo = term.payload
        return f"((_ extract {hi} {lo}) {args})"
    if op == "zext":
        extra = term.width - term.args[0].width
        return f"((_ zero_extend {extra}) {args})"
    if op == "sext":
        extra = term.width - term.args[0].width
        return f"((_ sign_extend {extra}) {args})"
    smt_op = _OPS.get(op)
    if smt_op is None:
        raise ValueError(f"cannot serialize op {op!r} to SMT-LIB2")
    return f"({smt_op} {args})"


def _shared_subterms(roots) -> list[Term]:
    """Non-leaf subterms referenced more than once, in postorder."""
    counts: dict[Term, int] = {}
    order: list[Term] = []
    stack = [(r, False) for r in roots]
    seen: set[Term] = set()
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        counts[node] = counts.get(node, 0) + 1
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for child in node.args:
            stack.append((child, False))
    return [t for t in order
            if counts.get(t, 0) > 1 and t.args and t not in set(roots)]


def to_smtlib2(terms, *, logic: str = "QF_BV",
               get_model: bool = False) -> str:
    """A complete SMT-LIB2 script asserting ``terms`` (a conjunction).

    With ``get_model`` the script ends in ``(get-model)`` after
    ``(check-sat)`` so back ends can parse values out of the reply.
    """
    terms = list(terms)
    lines = [f"(set-logic {logic})"]
    variables: set[Term] = set()
    for t in terms:
        variables |= free_vars(t)
    for v in sorted(variables, key=lambda t: (str(t.payload), t.width)):
        sort = "Bool" if v.width == 0 else f"(_ BitVec {v.width})"
        lines.append(f"(declare-const {smtlib_symbol(v.payload)} {sort})")
    shared: dict[Term, str] = {}
    bindings: list[str] = []
    for sub in _shared_subterms(terms):
        rendered = _render_node(sub, shared)
        shared[sub] = f"?t{len(shared)}"
        bindings.append(f"({shared[sub]} {rendered})")
    for t in terms:
        body = _render(t, shared)
        # Close over every binding; SMT-LIB2 lets are non-recursive, so
        # nest them innermost-last (each may refer to earlier ones).
        for binding in reversed(bindings):
            body = f"(let ({binding}) {body})"
        lines.append(f"(assert {body})")
    lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
