"""Word-level preprocessing of conjunct sets (query-elision layer 1).

Path constraints in P4 programs are overwhelmingly shallow bitvector
facts — header-field equalities from parser transitions, range guards
from length checks, mask tests from ternary matches (the observation
formalized by Petr4's and P4K's word-level semantics).  This module
decides such conjunct sets directly at the word level, so the common
feasibility checks never reach bit-blasting:

1. **Constant folding across conjuncts** — a conjunct that folds to
   ``false`` proves the whole set unsatisfiable; ``true`` conjuncts are
   dropped.
2. **Equality substitution** — every ``var == const`` conjunct becomes
   a binding that is propagated into the remaining conjuncts (through
   the simplifying smart constructors, which fold the results).  Two
   bindings of the same variable to different constants are an
   immediate contradiction.
3. **Interval / bit-mask analysis** — residual single-variable atoms
   (``var < c``, ``var >= c``, ``var != c``, ``var & m == c``) are
   folded into one per-variable domain.  An exactly-empty domain proves
   UNSAT; if *every* residual conjunct was absorbed into a domain and
   every domain yields a witness value, the set is SAT.

Soundness contract:

- ``"unsat"`` is returned only on a precise word-level argument: a
  constant-folded ``false`` conjunct, conflicting equality bindings,
  conflicting fixed bits, or a single-variable domain whose emptiness
  was decided exactly (never by a truncated search).
- ``"sat"`` is returned only together with a **verified witness**: the
  assembled assignment is re-evaluated against every original conjunct
  (via :func:`repro.smt.evaluate.all_hold`) before the verdict leaves
  this module.  A witness that fails verification downgrades the result to
  *undecided* instead of returning an unsound answer.
- ``None`` (undecided) is always safe: the caller falls through to a
  real solve.
"""

from __future__ import annotations

from .evaluate import all_hold
from .terms import Term, bool_const, substitute

__all__ = ["PreprocessResult", "preprocess_conjuncts"]

# Equality propagation rounds before giving up on a fixpoint.  Most
# cascades (bind, substitute, fold, bind again) settle in two.
MAX_ROUNDS = 3
# Per-variable cap on tracked disequalities; beyond it the atom is
# treated as unparsed (blocks SAT claims, never causes a wrong UNSAT).
MAX_EXCLUDED = 64

_TRUE = None  # initialized lazily to avoid import-time construction
_FALSE = None


def _consts():
    global _TRUE, _FALSE
    if _TRUE is None:
        _TRUE, _FALSE = bool_const(True), bool_const(False)
    return _TRUE, _FALSE


class PreprocessResult:
    """Outcome of one word-level pass.

    Attributes:
        status: ``"sat"``, ``"unsat"``, or ``None`` (undecided).
        witness: verified satisfying assignment (``status == "sat"``
            only) mapping variable terms to concrete values.
        residual: the simplified, binding-free conjuncts left over.
        bindings: the ``var -> const-term`` equalities that were
            propagated out of the set.
    """

    __slots__ = ("status", "witness", "residual", "bindings")

    def __init__(self, status, witness, residual, bindings):
        self.status = status
        self.witness = witness
        self.residual = residual
        self.bindings = bindings

    def __repr__(self):
        return (f"PreprocessResult({self.status!r}, "
                f"{len(self.residual)} residual)")


def _as_binding(t: Term):
    """``(var, const-term)`` if ``t`` pins a variable, else None."""
    true_t, false_t = _consts()
    if t.op == "var" and t.width == 0:
        return t, true_t
    if t.op == "not" and t.args[0].op == "var":
        return t.args[0], false_t
    if t.op == "eq":
        a, b = t.args
        if a.op == "var" and b.op == "const":
            return a, b
        if b.op == "var" and a.op == "const":
            return b, a
    return None


class _Domain:
    """Interval + fixed-bits + disequality facts for one variable."""

    __slots__ = ("width", "lo", "hi", "mask", "val", "excluded",
                 "overflow")

    def __init__(self, width: int):
        self.width = width
        self.lo = 0
        self.hi = (1 << width) - 1
        self.mask = 0   # bits pinned by bvand/eq facts
        self.val = 0    # their pinned values
        self.excluded: set[int] = set()
        self.overflow = False  # too many disequalities to track exactly

    def conflict(self) -> bool:
        return self.lo > self.hi

    def exclude(self, value: int) -> None:
        if len(self.excluded) >= MAX_EXCLUDED:
            self.overflow = True
            return
        self.excluded.add(value)

    def fix_bits(self, mask: int, value: int) -> bool:
        """Merge a ``var & mask == value`` fact; False on contradiction."""
        width_mask = (1 << self.width) - 1
        mask &= width_mask
        value &= width_mask
        if value & ~mask:
            return False  # bits outside the mask can never be set
        if (self.val ^ value) & (self.mask & mask):
            return False  # two facts disagree on a shared fixed bit
        self.mask |= mask
        self.val |= value
        return True

    # -- witness search ------------------------------------------------

    def pick(self):
        """A concrete in-domain value, ``None`` if the domain is
        *exactly* empty, or ``...`` (Ellipsis) when undecided."""
        if self.lo > self.hi:
            return None
        positions = [i for i in range(self.width)
                     if not (self.mask >> i) & 1]
        if not positions:
            v = self.val
            if self.lo <= v <= self.hi and v not in self.excluded:
                return v
            return None
        total = 1 << len(positions)
        lo_i = self._first_index_at_least(positions, total, self.lo)
        budget = len(self.excluded) + 1
        i = lo_i
        while i < total and budget > 0:
            cand = self.val | _deposit(i, positions)
            if cand > self.hi:
                return None  # scanned every in-range candidate
            if cand not in self.excluded:
                return cand
            i += 1
            budget -= 1
        if i >= total:
            return None
        return ...  # search budget exhausted without a decision

    def _first_index_at_least(self, positions, total, lo):
        """Smallest i with ``val | deposit(i) >= lo`` (monotone in i)."""
        lo_i, hi_i = 0, total  # hi_i exclusive
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            if self.val | _deposit(mid, positions) >= lo:
                hi_i = mid
            else:
                lo_i = mid + 1
        return lo_i


def _deposit(i: int, positions) -> int:
    """Scatter the low bits of ``i`` over ascending bit positions."""
    v = 0
    for b, p in enumerate(positions):
        if (i >> b) & 1:
            v |= 1 << p
    return v


def _parse_atom(t: Term):
    """``(var, kind, payload)`` for single-variable atoms, else None."""
    neg = False
    if t.op == "not":
        neg, t = True, t.args[0]
    if t.op == "ult":
        a, b = t.args
        if a.op == "var" and b.op == "const":
            # var < c, or (negated) var >= c
            return (a, "ge" if neg else "lt", b.payload)
        if a.op == "const" and b.op == "var":
            # c < var, or (negated) var <= c
            return (b, "le" if neg else "gt", a.payload)
        return None
    if t.op == "eq":
        a, b = t.args
        if neg:
            if a.op == "var" and b.op == "const":
                return (a, "ne", b.payload)
            if b.op == "var" and a.op == "const":
                return (b, "ne", a.payload)
            return None
        for x, y in ((a, b), (b, a)):
            if x.op == "bvand" and y.op == "const":
                u, m = x.args
                if u.op == "var" and m.op == "const":
                    return (u, "mask", (m.payload, y.payload))
                if m.op == "var" and u.op == "const":
                    return (m, "mask", (u.payload, y.payload))
    return None


def _domain_analysis(residual):
    """Returns ``(status, witness)`` for the residual conjuncts.

    ``status`` is ``"sat"`` (with a per-variable witness dict),
    ``"unsat"``, or ``None``.  UNSAT needs only the parsed facts of a
    single variable to be contradictory; SAT additionally requires that
    *every* residual conjunct was parsed.
    """
    if not residual:
        return "sat", {}
    doms: dict[Term, _Domain] = {}
    unparsed = False
    for t in residual:
        fact = _parse_atom(t)
        if fact is None:
            unparsed = True
            continue
        var, kind, payload = fact
        d = doms.get(var)
        if d is None:
            d = doms[var] = _Domain(var.width)
        if kind == "lt":
            d.hi = min(d.hi, payload - 1)
        elif kind == "le":
            d.hi = min(d.hi, payload)
        elif kind == "gt":
            d.lo = max(d.lo, payload + 1)
        elif kind == "ge":
            d.lo = max(d.lo, payload)
        elif kind == "ne":
            d.exclude(payload)
        elif kind == "mask":
            if not d.fix_bits(*payload):
                return "unsat", None
        if d.conflict():
            return "unsat", None
    witness = {}
    undecided = unparsed
    for var, d in doms.items():
        v = d.pick()
        if v is None and not d.overflow:
            return "unsat", None
        if v is None or v is ...:
            undecided = True
            continue
        witness[var] = v
    if undecided:
        return None, None
    return "sat", witness


def preprocess_conjuncts(conjuncts) -> PreprocessResult:
    """Run the full word-level pass over a conjunct set."""
    bindings: dict[Term, Term] = {}
    work = list(conjuncts)
    for _ in range(MAX_ROUNDS):
        changed = False
        nxt: list[Term] = []
        seen: set[Term] = set()
        queue = list(reversed(work))
        while queue:
            t = queue.pop()
            if bindings:
                sub = substitute(t, bindings)
                if sub is not t:
                    changed = True
                    t = sub
            if t.op == "and":
                queue.extend(reversed(t.args))
                changed = True
                continue
            if t.is_const:
                if t.payload:
                    changed = True
                    continue
                return PreprocessResult("unsat", None, [], bindings)
            pair = _as_binding(t)
            if pair is not None:
                var, const = pair
                prev = bindings.get(var)
                if prev is None:
                    bindings[var] = const
                    changed = True
                    continue
                if prev != const:  # structural: exact under --no-intern too
                    return PreprocessResult("unsat", None, [], bindings)
                changed = True
                continue
            if t not in seen:
                seen.add(t)
                nxt.append(t)
        work = nxt
        if not changed:
            break
    status, domain_witness = _domain_analysis(work)
    if status == "unsat":
        return PreprocessResult("unsat", None, work, bindings)
    witness = None
    if status == "sat":
        witness = {var: const.payload for var, const in bindings.items()}
        witness.update(domain_witness)
        # The final guard: a SAT verdict must carry a witness that the
        # original conjuncts actually evaluate true under (unmentioned
        # variables default to zero, which is part of the witness).
        if all_hold(conjuncts, witness):
            return PreprocessResult("sat", witness, work, bindings)
        status, witness = None, None
    return PreprocessResult(status, witness, work, bindings)
