"""Canonical solve cache (amortizing solver work across paths).

Path exploration re-solves heavily overlapping constraint sets: sibling
paths share their whole prefix, and finalization re-checks the same
assumptions with one extra pin.  :class:`SolveCache` memoizes complete
``check`` answers *and* models, keyed on the canonicalized constraint
set.

Two properties make the cache safe to share across exploration order
and — more importantly — across processes:

- **Canonical keys.**  A query's key is the deduplicated constraint
  set sorted by a structural serialization of the hash-consed term DAG
  (:func:`canonical_string`).  The serialization depends only on term
  structure, never on Python object hashes, so the same constraint set
  maps to the same key in every process.
- **Pure solves.**  A cache miss is solved by a *fresh* throwaway
  solver that asserts the key's terms in key order and eagerly extracts
  a model for every free variable.  The answer is a pure function of
  the key: whether a query hits or misses can change timing, never
  results.  This is what makes ``jobs=N`` byte-identical to ``jobs=1``
  — the incremental CDCL solver's models depend on query history, a
  canonical solve's do not.
"""

from __future__ import annotations

from collections import OrderedDict

from .terms import Term, free_vars

__all__ = ["SolveCache", "CacheEntry", "canonical_string"]

# Full canonical serializations, memoized per (hash-consed) term object.
_CANON: dict[Term, str] = {}


def canonical_string(term: Term) -> str:
    """A process-independent structural serialization of ``term``.

    Nodes are numbered in postorder over the DAG (children before
    parents, shared subterms once), so structurally identical terms —
    which hash-consing makes identical objects — always serialize
    identically, regardless of interpreter hash randomization.
    """
    cached = _CANON.get(term)
    if cached is not None:
        return cached
    ids: dict[Term, int] = {}
    pieces: list[str] = []
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in ids:
            continue
        if not expanded:
            stack.append((node, True))
            for child in reversed(node.args):
                if child not in ids:
                    stack.append((child, False))
        else:
            arg_ids = ",".join(str(ids[a]) for a in node.args)
            pieces.append(f"{node.op}/{node.width}/{node.payload!r}/{arg_ids}")
            ids[node] = len(ids)
    out = ";".join(pieces)
    _CANON[term] = out
    return out


class CacheEntry:
    """One memoized solve: status, eager model values, and the time the
    original solve cost (credited as savings on every hit)."""

    __slots__ = ("status", "values", "solve_time")

    def __init__(self, status: str, values: dict[Term, int | bool] | None,
                 solve_time: float):
        self.status = status
        self.values = values
        self.solve_time = solve_time


class SolveCache:
    """LRU map from canonical constraint sets to :class:`CacheEntry`.

    ``capacity=None`` is unbounded; ``capacity=0`` disables storage but
    keeps the canonical (pure, order-independent) solving discipline —
    useful for measuring cache effectiveness and for deterministic
    parallel runs that cannot afford the memory.
    """

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.time_saved = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, terms) -> tuple[Term, ...]:
        """Canonical key: dedupe (terms are hash-consed) and sort by
        structural serialization."""
        seen = set()
        uniq = []
        for t in terms:
            if t not in seen:
                seen.add(t)
                uniq.append(t)
        uniq.sort(key=canonical_string)
        return tuple(uniq)

    def lookup(self, key: tuple[Term, ...]) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.time_saved += entry.solve_time
        return entry

    def store(self, key: tuple[Term, ...], entry: CacheEntry) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def solve(self, key: tuple[Term, ...]) -> CacheEntry:
        """Solve a canonical key from scratch.

        Uses a fresh solver and asserts terms in key order, so the
        answer (including the model) is a pure function of the key.
        """
        from .solver import Solver

        sub = Solver()
        for t in key:
            sub.add(t)
        status = sub.check()
        values = None
        if status == "sat":
            variables: set[Term] = set()
            for t in key:
                variables |= free_vars(t)
            values = sub.model(variables).as_dict()
        return CacheEntry(status, values, sub.stats.total_time)

    def clear(self) -> None:
        self._entries.clear()

    def stats_dict(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "time_saved_s": self.time_saved,
        }
