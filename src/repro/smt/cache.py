"""Canonical solve cache (amortizing solver work across paths).

Path exploration re-solves heavily overlapping constraint sets: sibling
paths share their whole prefix, and finalization re-checks the same
assumptions with one extra pin.  :class:`SolveCache` memoizes complete
``check`` answers *and* models, keyed on the canonicalized constraint
set.

Three properties make the cache safe to share across exploration order
and — more importantly — across processes:

- **Canonical keys.**  A query's key is the deduplicated constraint
  set sorted by a structural serialization of the hash-consed term DAG.
  The serialization depends only on term structure, never on Python
  object hashes, so the same constraint set maps to the same key in
  every process.
- **Alpha-invariant keys.**  Variable *names* are anonymized out of the
  key: each variable becomes an index assigned by first occurrence in
  the canonically ordered set (:class:`CacheKey`).  Two constraint sets
  that differ only by a consistent renaming of variables share one
  entry, and a hit's model is rebound to the querying set's own
  variables through the key's ``var_order``.  Key equality implies the
  ordered sets are identical up to that index bijection, which is
  exactly the witness needed for the rebinding to be sound.
- **Pure solves.**  A cache miss is solved by a *fresh* throwaway
  solver that asserts the key's terms in key order and eagerly extracts
  a model for every free variable.  The answer is a pure function of
  the key, and the rebound model a pure function of the queried term
  set: whether a query hits or misses can change timing, never results.
  This is what makes ``jobs=N`` byte-identical to ``jobs=1`` — the
  incremental CDCL solver's models depend on query history, a canonical
  solve's do not.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

from .terms import Term, free_vars, interning_enabled

__all__ = ["SolveCache", "CacheEntry", "CacheKey", "canonical_string",
           "alpha_template"]

# Full canonical serializations, memoized per (hash-consed) term object.
# Weakly keyed so the memo never outlives the term: with the weak
# intern pool, a strong Term-keyed dict here would silently pin every
# canonicalized term (and its whole sub-DAG) for the process lifetime.
_CANON: "weakref.WeakKeyDictionary[Term, str]" = weakref.WeakKeyDictionary()
# Per-term alpha template: (name-free serialization, local var order).
_ALPHA: "weakref.WeakKeyDictionary[Term, tuple[str, tuple[Term, ...]]]" = (
    weakref.WeakKeyDictionary())


def canonical_string(term: Term) -> str:
    """A process-independent structural serialization of ``term``.

    Nodes are numbered in postorder over the DAG (children before
    parents, shared subterms once), so structurally identical terms —
    which hash-consing makes identical objects — always serialize
    identically, regardless of interpreter hash randomization.  Unlike
    :func:`alpha_template`, variable names are kept: this is the total
    order used to sort a key (and break ties between alpha-equivalent
    terms deterministically).
    """
    cached = _CANON.get(term)
    if cached is not None:
        return cached
    ids: dict[Term, int] = {}
    pieces: list[str] = []
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in ids:
            continue
        if not expanded:
            stack.append((node, True))
            for child in reversed(node.args):
                if child not in ids:
                    stack.append((child, False))
        else:
            arg_ids = ",".join(str(ids[a]) for a in node.args)
            pieces.append(f"{node.op}/{node.width}/{node.payload!r}/{arg_ids}")
            ids[node] = len(ids)
    out = ";".join(pieces)
    _CANON[term] = out
    return out


def alpha_template(term: Term) -> tuple[str, tuple[Term, ...]]:
    """Name-free serialization of ``term`` plus its variable order.

    Variables are replaced by indices assigned in first-occurrence
    postorder, so the string is invariant under any consistent renaming
    while still capturing intra-term variable sharing (``a == a`` and
    ``a == b`` template differently).  Memoized per hash-consed term.
    """
    cached = _ALPHA.get(term)
    if cached is not None:
        return cached
    ids: dict[Term, int] = {}
    var_ids: dict[Term, int] = {}
    pieces: list[str] = []
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in ids:
            continue
        if not expanded:
            stack.append((node, True))
            for child in reversed(node.args):
                if child not in ids:
                    stack.append((child, False))
        else:
            if node.op == "var":
                payload = f"@{var_ids.setdefault(node, len(var_ids))}"
            else:
                payload = repr(node.payload)
            arg_ids = ",".join(str(ids[a]) for a in node.args)
            pieces.append(f"{node.op}/{node.width}/{payload}/{arg_ids}")
            ids[node] = len(ids)
    out = (";".join(pieces), tuple(var_ids))
    _ALPHA[term] = out
    return out


class CacheKey:
    """Alpha-invariant canonical key for one constraint set.

    ``terms`` holds the querying set's actual terms in canonical order
    (iterate the key to assert them); ``var_order`` its variables in
    canonical index order.  Equality and hashing use only ``canon`` —
    the name-free serialization — so renamed-but-equivalent sets
    collide, and ``var_order[i]`` of any two equal keys denote
    corresponding variables.
    """

    __slots__ = ("terms", "canon", "var_order", "_hash")

    def __init__(self, terms: tuple[Term, ...], canon: str,
                 var_order: tuple[Term, ...]):
        self.terms = terms
        self.canon = canon
        self.var_order = var_order
        self._hash = hash(canon)

    def __iter__(self):
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __eq__(self, other) -> bool:
        return isinstance(other, CacheKey) and self.canon == other.canon

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"CacheKey({len(self.terms)} terms, {len(self.var_order)} vars)"


class CacheEntry:
    """One memoized solve: status, eager model values by canonical
    variable index, the time the original solve cost (credited as
    savings on every hit), and which solver back end answered.

    ``backend`` matters only for SAT entries: different back ends bind
    different (all correct) models, so a model must never be served to
    a run whose primary back end would have bound another one.  UNSAT
    has no model to disagree about, so UNSAT entries are shared across
    back ends (see :meth:`SolveCache.store`).
    """

    __slots__ = ("status", "values", "solve_time", "backend")

    def __init__(self, status: str, values: tuple | None,
                 solve_time: float, backend: str = "native"):
        self.status = status
        self.values = values
        self.solve_time = solve_time
        self.backend = backend

    def model_values(self, key: CacheKey) -> dict[Term, int | bool]:
        """Rebind the stored model to ``key``'s own variable terms."""
        assert self.values is not None
        return dict(zip(key.var_order, self.values))


class SolveCache:
    """LRU map from canonical constraint sets to :class:`CacheEntry`.

    ``capacity=None`` is unbounded; ``capacity=0`` disables storage but
    keeps the canonical (pure, order-independent) solving discipline —
    useful for measuring cache effectiveness and for deterministic
    parallel runs that cannot afford the memory.
    """

    def __init__(self, capacity: int | None = None, portfolio=None,
                 crosscheck=None):
        self.capacity = capacity
        # Entries are keyed ``(CacheKey, backend_tag)``: SAT entries
        # under the answering back end's name (models are
        # backend-dependent), UNSAT entries under the shared "" tag
        # (verdicts are not) — so switching ``--solver`` can never
        # replay another back end's model, while UNSAT work is reused
        # across back ends.
        self._entries: OrderedDict[tuple[CacheKey, str], CacheEntry] = (
            OrderedDict())
        # Portfolio / crosscheck (smt/backends.py): the portfolio is
        # handed to every miss solve's sub-solver; the crosschecker
        # samples SAT answers for differential validation.
        self.portfolio = portfolio
        self.crosscheck = crosscheck
        self.backend_name = (portfolio.primary_name
                             if portfolio is not None else "native")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.elided_stores = 0
        self.time_saved = 0.0
        # Shared-blast-cache effect across this cache's miss solves.
        self.blast_hits = 0
        self.blast_misses = 0
        self.blast_clauses_replayed = 0
        self.blast_time_saved = 0.0
        # Per-backend counters accumulated from miss-solve sub-solvers.
        self.backend_queries: dict[str, int] = {}
        self.backend_wins: dict[str, int] = {}
        self.backend_timeouts: dict[str, int] = {}
        self.backend_errors: dict[str, int] = {}
        self.portfolio_races = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, terms) -> CacheKey:
        """Canonical key: dedupe (terms are hash-consed), sort by the
        alpha template (name-aware tie-break), and number variables by
        first occurrence in that order."""
        seen = set()
        uniq = []
        for t in terms:
            if t not in seen:
                seen.add(t)
                uniq.append(t)
        uniq.sort(key=lambda t: (alpha_template(t)[0], canonical_string(t)))
        var_index: dict[Term, int] = {}
        pieces = []
        for t in uniq:
            template, local_vars = alpha_template(t)
            binding = ",".join(
                str(var_index.setdefault(v, len(var_index)))
                for v in local_vars
            )
            pieces.append(f"{template}[{binding}]")
        return CacheKey(tuple(uniq), "|".join(pieces), tuple(var_index))

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Status-plane lookup: no hit/miss accounting, no LRU motion.

        The incremental feasibility plane peeks before riding its own
        SAT database — a canonical answer for the same constraint set
        (typically from a sibling path's finalization) settles the
        status for free.  Peeks stay invisible to the cache's own
        counters so hit-rate reports keep describing canonical checks.
        """
        entry = self._entries.get((key, self.backend_name))
        if entry is None:
            entry = self._entries.get((key, ""))
        return entry

    def lookup(self, key: CacheKey) -> CacheEntry | None:
        # SAT entries must come from this run's primary back end;
        # UNSAT entries (tag "") are backend-free.
        slot = (key, self.backend_name)
        entry = self._entries.get(slot)
        if entry is None:
            slot = (key, "")
            entry = self._entries.get(slot)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(slot)
        self.hits += 1
        self.time_saved += entry.solve_time
        return entry

    def store(self, key: CacheKey, entry: CacheEntry) -> None:
        if self.capacity == 0:
            return
        slot = (key, "" if entry.status == "unsat" else entry.backend)
        self._entries[slot] = entry
        self._entries.move_to_end(slot)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def store_elided(self, key: CacheKey, status: str) -> CacheEntry:
        """Store an answer proved by the elision layer without a solve.

        Only status-exact answers may go through here (in practice:
        UNSAT, which has no model to disagree about).  The entry records
        zero solve time, so later hits claim no phantom savings.
        """
        assert status == "unsat", "elided SAT answers must not enter the cache"
        entry = CacheEntry(status, None, 0.0)
        self.store(key, entry)
        self.elided_stores += 1
        return entry

    def solve(self, key: CacheKey) -> CacheEntry:
        """Solve a canonical key from scratch.

        Uses a fresh solver and asserts terms in key order, so the
        answer (including the model, stored by variable index) is a
        pure function of the key.  When interning is on, the fresh
        solver blasts through the process-wide shared blast cache:
        replayed CNF is bit-identical to cold blasting (see
        smt/bitblast.py), so warm and cold solves return the same
        entry — only faster.

        With a portfolio attached, hard solves race external back
        ends; the model still comes from the primary back end, so the
        entry stays a pure function of (key, primary backend).
        """
        from .bitblast import shared_blast_cache
        from .solver import Solver

        share = shared_blast_cache() if interning_enabled() else None
        sub = Solver(blast_share=share, portfolio=self.portfolio,
                     portfolio_need_model=True)
        for t in key:
            sub.add(t)
        status = sub.check()
        self.blast_hits += sub.stats.blast_cache_hits
        self.blast_misses += sub.stats.blast_cache_misses
        self.blast_clauses_replayed += sub.stats.blast_clauses_replayed
        self.blast_time_saved += sub.stats.blast_time_saved_s
        self.portfolio_races += sub.stats.portfolio_races
        for field in ("backend_queries", "backend_wins",
                      "backend_timeouts", "backend_errors"):
            mine = getattr(self, field)
            for name, count in getattr(sub.stats, field).items():
                mine[name] = mine.get(name, 0) + count
        values = None
        if status == "sat":
            variables: set[Term] = set()
            for t in key:
                variables |= free_vars(t)
            model = sub.model(variables)
            values = tuple(model[v] for v in key.var_order)
            if self.crosscheck is not None:
                from .backends import request_from_sat

                request = request_from_sat(sub._sat, terms=tuple(key))
                self.crosscheck.maybe_check(
                    key.terms, model.as_dict(), request,
                    context=f"{len(key)} conjuncts")
        return CacheEntry(status, values, sub.stats.total_time,
                          backend=sub.last_backend)

    def clear(self) -> None:
        self._entries.clear()

    def stats_dict(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "elided_stores": self.elided_stores,
            "time_saved_s": self.time_saved,
            "blast_hits": self.blast_hits,
            "blast_misses": self.blast_misses,
            "blast_clauses_replayed": self.blast_clauses_replayed,
            "blast_time_saved_s": self.blast_time_saved,
        }
