"""Tseitin gate construction over a CDCL SAT solver.

:class:`CnfBuilder` offers boolean gate constructors (AND/OR/XOR/ITE/
IFF) that allocate fresh SAT variables and emit the defining clauses.
Gates are structurally hashed so that repeated subcircuits reuse the
same output literal.  Constant TRUE is a dedicated variable asserted
at level 0, so every "bit" in the bit-blaster is uniformly a literal.
"""

from __future__ import annotations

from .sat import SatSolver

__all__ = ["CnfBuilder"]


class CnfBuilder:
    def __init__(self, solver: SatSolver):
        self.solver = solver
        self._gate_cache: dict[tuple, int] = {}
        self._true = solver.new_var()
        solver.add_clause([self._true])

    # -- constants ------------------------------------------------------

    @property
    def TRUE(self) -> int:
        return self._true

    @property
    def FALSE(self) -> int:
        return -self._true

    def const(self, v: bool) -> int:
        return self._true if v else -self._true

    def is_true(self, lit: int) -> bool:
        return lit == self._true

    def is_false(self, lit: int) -> bool:
        return lit == -self._true

    def fresh(self) -> int:
        return self.solver.new_var()

    # -- gates ----------------------------------------------------------

    def not_(self, a: int) -> int:
        return -a

    def and_(self, a: int, b: int) -> int:
        if self.is_false(a) or self.is_false(b):
            return self.FALSE
        if self.is_true(a):
            return b
        if self.is_true(b):
            return a
        if a == b:
            return a
        if a == -b:
            return self.FALSE
        key = ("and",) + tuple(sorted((a, b)))
        out = self._gate_cache.get(key)
        if out is None:
            out = self.fresh()
            self.solver.add_clause([-out, a])
            self.solver.add_clause([-out, b])
            self.solver.add_clause([out, -a, -b])
            self._gate_cache[key] = out
        return out

    def or_(self, a: int, b: int) -> int:
        return -self.and_(-a, -b)

    def xor_(self, a: int, b: int) -> int:
        if self.is_false(a):
            return b
        if self.is_false(b):
            return a
        if self.is_true(a):
            return -b
        if self.is_true(b):
            return -a
        if a == b:
            return self.FALSE
        if a == -b:
            return self.TRUE
        # Normalize polarity: xor(a,b) == -xor(-a,b).
        neg = False
        if a < 0:
            a, neg = -a, not neg
        if b < 0:
            b, neg = -b, not neg
        key = ("xor",) + tuple(sorted((a, b)))
        out = self._gate_cache.get(key)
        if out is None:
            out = self.fresh()
            self.solver.add_clause([-out, a, b])
            self.solver.add_clause([-out, -a, -b])
            self.solver.add_clause([out, -a, b])
            self.solver.add_clause([out, a, -b])
            self._gate_cache[key] = out
        return -out if neg else out

    def iff(self, a: int, b: int) -> int:
        return -self.xor_(a, b)

    def ite(self, c: int, t: int, e: int) -> int:
        if self.is_true(c):
            return t
        if self.is_false(c):
            return e
        if t == e:
            return t
        if t == -e:
            return self.xor_(c, e)
        key = ("ite", c, t, e)
        out = self._gate_cache.get(key)
        if out is None:
            out = self.fresh()
            self.solver.add_clause([-out, -c, t])
            self.solver.add_clause([-out, c, e])
            self.solver.add_clause([out, -c, -t])
            self.solver.add_clause([out, c, -e])
            self._gate_cache[key] = out
        return out

    def and_many(self, lits: list[int]) -> int:
        out = self.TRUE
        for lit in lits:
            out = self.and_(out, lit)
        return out

    def or_many(self, lits: list[int]) -> int:
        out = self.FALSE
        for lit in lits:
            out = self.or_(out, lit)
        return out

    # -- arithmetic primitives -------------------------------------------

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out)."""
        s = self.xor_(self.xor_(a, b), cin)
        c = self.or_(self.and_(a, b), self.and_(cin, self.xor_(a, b)))
        return s, c
