"""Solver query elision (the layer in front of bit-blasting).

Most incremental feasibility checks issued during path exploration are
decidable without touching the SAT core: the answer is either witnessed
by a recently found model, implied by a previously proven UNSAT set, or
provable directly at the word level.  :class:`QueryElider` stacks the
three layers, cheapest first:

1. **Model reuse** — the last *K* satisfying assignments are kept; a
   new query is evaluated under each (short-circuiting, most recent
   first, newest conjuncts first so mismatches fail fast).  A hit
   answers SAT with a genuine model in zero blast/solve time.
2. **UNSAT subsumption** — every proven-UNSAT conjunct set is cached
   (the whole set is its own core); any new query that contains a
   cached core as a subset is UNSAT by monotonicity of conjunction.
3. **Word-level rewrite** — :func:`repro.smt.preprocess.\
preprocess_conjuncts` folds constants across conjuncts, propagates
   ``var == const`` equalities, and runs interval/bit-mask analysis.
   Its SAT verdicts come with verified witnesses, which also seed the
   model-reuse cache.

Soundness split (enforced by ``sat_ok``): elided **status** answers are
always exact, but an elided SAT *model* is history-dependent — it is
whatever witness happened to be cached, not the model a canonical solve
would bind.  Solvers whose models reach test output (the canonical,
cache-backed solver) therefore run with ``sat_ok=False`` and elide only
UNSAT answers; full elision is reserved for the incremental
feasibility-pruning solver, where only the status is ever consumed.

The elider mutates the owning solver's :class:`SolverStats` directly
(``elide_hits_model`` / ``elide_hits_rewrite`` / ``elide_hits_subsume``
/ ``elide_misses``, ``rewrite_time_s``, and eviction counts), so the
counters aggregate through the existing stats plumbing unchanged.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from .evaluate import all_hold
from .preprocess import preprocess_conjuncts

__all__ = ["QueryElider"]

DEFAULT_MODELS = 8
DEFAULT_UNSAT = 64


class QueryElider:
    """Answer solver checks from cached knowledge when sound.

    ``stats`` is the owning solver's :class:`~repro.smt.solver.\
SolverStats`; ``max_models`` / ``max_unsat`` bound the two caches
    (0 disables a layer); ``sat_ok=False`` restricts the elider to
    UNSAT answers (see module docstring).
    """

    def __init__(self, stats, max_models: int = DEFAULT_MODELS,
                 max_unsat: int = DEFAULT_UNSAT, sat_ok: bool = True):
        self.stats = stats
        self.max_models = max_models
        self.max_unsat = max_unsat
        self.sat_ok = sat_ok
        self._models: list[dict] = []          # most recent first
        self._unsat_sets: OrderedDict = OrderedDict()  # insertion = age

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def try_answer(self, conjuncts):
        """``("sat", witness)`` / ``("unsat", None)`` / ``(None, None)``.

        A ``"sat"`` answer's witness is a complete assignment the whole
        conjunct set evaluates true under (unmentioned variables are
        implicitly zero).  ``None`` means the caller must solve.
        """
        stats = self.stats
        conjuncts = list(conjuncts)
        if self.sat_ok and self._models:
            # Newest conjunct first: sibling queries share their prefix
            # and differ at the tail, so mismatches fail on conjunct #1.
            tail_first = conjuncts[::-1]
            for i, model in enumerate(self._models):
                if all_hold(tail_first, model):
                    if i:
                        self._models.insert(0, self._models.pop(i))
                    stats.elide_hits_model += 1
                    return "sat", model
        cset = frozenset(conjuncts)
        for core in self._unsat_sets:
            if core <= cset:
                stats.elide_hits_subsume += 1
                return "unsat", None
        t0 = time.perf_counter()
        result = preprocess_conjuncts(conjuncts)
        stats.rewrite_time_s += time.perf_counter() - t0
        if result.status == "unsat":
            stats.elide_hits_rewrite += 1
            self.note_unsat(cset)
            return "unsat", None
        if result.status == "sat" and self.sat_ok:
            stats.elide_hits_rewrite += 1
            self.note_model(result.witness)
            return "sat", result.witness
        stats.elide_misses += 1
        return None, None

    # ------------------------------------------------------------------
    # Feedback side (called after real solves)
    # ------------------------------------------------------------------

    def note_model(self, assignment) -> None:
        """Remember a satisfying assignment for future reuse."""
        if self.max_models <= 0 or assignment is None:
            return
        self._models.insert(0, dict(assignment))
        if len(self._models) > self.max_models:
            self._models.pop()
            self.stats.elide_model_evictions += 1

    def note_unsat(self, conjuncts) -> None:
        """Remember a proven-UNSAT conjunct set as a subsumption core."""
        if self.max_unsat <= 0:
            return
        cset = frozenset(conjuncts)
        if cset in self._unsat_sets:
            self._unsat_sets.move_to_end(cset)
            return
        self._unsat_sets[cset] = None
        if len(self._unsat_sets) > self.max_unsat:
            self._unsat_sets.popitem(last=False)
            self.stats.elide_unsat_evictions += 1
