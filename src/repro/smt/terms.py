"""Bitvector term language for the QF_BV solver substrate.

The paper's P4Testgen uses Z3 to solve path constraints.  Z3 is not
available in this environment, so we implement the fragment P4Testgen
actually needs: quantifier-free fixed-width bitvectors plus booleans.

Terms are immutable and hash-consed: structurally identical terms are
the same Python object, which makes equality checks O(1) and lets the
bit-blaster cache per-term results.  Smart constructors perform
algebraic simplification (constant folding, identities) unless the
module-level switch :data:`SIMPLIFY` is disabled (used by the ablation
benchmark).
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = [
    "Term",
    "BoolTerm",
    "BvTerm",
    "SIMPLIFY",
    "set_simplify",
    "simplification_enabled",
    "true",
    "false",
    "bool_const",
    "bool_var",
    "bv_const",
    "bv_var",
    "not_",
    "and_",
    "or_",
    "xor_",
    "implies",
    "ite_bool",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "bv_not",
    "bv_neg",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_add",
    "bv_sub",
    "bv_mul",
    "bv_udiv",
    "bv_urem",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "concat",
    "extract",
    "zero_extend",
    "sign_extend",
    "ite_bv",
    "free_vars",
    "substitute",
]

# --------------------------------------------------------------------------
# Global simplification switch (for the SMT ablation benchmark).
# --------------------------------------------------------------------------

SIMPLIFY = True


def set_simplify(enabled: bool) -> None:
    """Enable or disable constructor-time algebraic simplification."""
    global SIMPLIFY
    SIMPLIFY = bool(enabled)


def simplification_enabled() -> bool:
    return SIMPLIFY


# --------------------------------------------------------------------------
# Term representation
# --------------------------------------------------------------------------

_INTERN: dict[tuple, "Term"] = {}


class Term:
    """A node in the hash-consed term DAG.

    Attributes:
        op: operator tag, e.g. ``"bvadd"``, ``"and"``, ``"const"``.
        args: child terms.
        width: bit width for bitvector terms, ``0`` for booleans.
        payload: operator-specific extra data (constant value, variable
            name, extract bounds).
    """

    __slots__ = ("op", "args", "width", "payload", "_hash")

    def __init__(self, op: str, args: tuple, width: int, payload=None):
        self.op = op
        self.args = args
        self.width = width
        self.payload = payload
        self._hash = hash((op, args, width, payload))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:  # hash-consing makes identity equality
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    # -- convenience predicates ------------------------------------------

    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def is_var(self) -> bool:
        return self.op == "var"

    @property
    def value(self):
        """Constant payload (int for BV, bool for boolean constants)."""
        if self.op != "const":
            raise ValueError(f"term {self.op} is not a constant")
        return self.payload

    @property
    def name(self) -> str:
        if self.op != "var":
            raise ValueError(f"term {self.op} is not a variable")
        return self.payload

    def __repr__(self) -> str:
        return _format(self, depth=0)


# ``BoolTerm``/``BvTerm`` are documentation aliases; both are Term.
BoolTerm = Term
BvTerm = Term


def _mk(op: str, args: tuple, width: int, payload=None) -> Term:
    key = (op, args, width, payload)
    t = _INTERN.get(key)
    if t is None:
        t = Term(op, args, width, payload)
        _INTERN[key] = t
    return t


def _format(t: Term, depth: int) -> str:
    if depth > 6:
        return "..."
    if t.op == "const":
        if t.width == 0:
            return "true" if t.payload else "false"
        return f"{t.width}w{t.payload:#x}"
    if t.op == "var":
        return f"{t.payload}:{t.width or 'bool'}"
    if t.op == "extract":
        hi, lo = t.payload
        return f"(extract[{hi}:{lo}] {_format(t.args[0], depth + 1)})"
    inner = " ".join(_format(a, depth + 1) for a in t.args)
    return f"({t.op} {inner})"


# --------------------------------------------------------------------------
# Constructors: constants and variables
# --------------------------------------------------------------------------

def bool_const(v: bool) -> Term:
    return _mk("const", (), 0, bool(v))


def true() -> Term:
    return bool_const(True)


def false() -> Term:
    return bool_const(False)


def bool_var(name: str) -> Term:
    return _mk("var", (), 0, name)


def bv_const(value: int, width: int) -> Term:
    if width <= 0:
        raise ValueError(f"bitvector width must be positive, got {width}")
    return _mk("const", (), width, value & ((1 << width) - 1))


def bv_var(name: str, width: int) -> Term:
    if width <= 0:
        raise ValueError(f"bitvector width must be positive, got {width}")
    return _mk("var", (), width, name)


def _require_bv(t: Term, ctx: str) -> None:
    if t.width == 0:
        raise TypeError(f"{ctx}: expected bitvector, got boolean {t!r}")


def _require_bool(t: Term, ctx: str) -> None:
    if t.width != 0:
        raise TypeError(f"{ctx}: expected boolean, got bv<{t.width}> {t!r}")


def _require_same_width(a: Term, b: Term, ctx: str) -> None:
    if a.width != b.width:
        raise TypeError(f"{ctx}: width mismatch {a.width} vs {b.width}")


# --------------------------------------------------------------------------
# Boolean connectives
# --------------------------------------------------------------------------

def not_(a: Term) -> Term:
    _require_bool(a, "not")
    if SIMPLIFY:
        if a.is_const:
            return bool_const(not a.payload)
        if a.op == "not":
            return a.args[0]
    return _mk("not", (a,), 0)


def _flatten(op: str, args: Iterable[Term]):
    for a in args:
        if a.op == op:
            yield from a.args
        else:
            yield a


def and_(*args: Term) -> Term:
    terms = []
    for a in _flatten("and", args):
        _require_bool(a, "and")
        if SIMPLIFY and a.is_const:
            if not a.payload:
                return false()
            continue
        terms.append(a)
    if SIMPLIFY:
        seen: list[Term] = []
        for t in terms:
            if t in seen:
                continue
            if t.op == "not" and t.args[0] in seen:
                return false()
            if not_(t) in seen:
                return false()
            seen.append(t)
        terms = seen
    if not terms:
        return true()
    if len(terms) == 1:
        return terms[0]
    return _mk("and", tuple(terms), 0)


def or_(*args: Term) -> Term:
    terms = []
    for a in _flatten("or", args):
        _require_bool(a, "or")
        if SIMPLIFY and a.is_const:
            if a.payload:
                return true()
            continue
        terms.append(a)
    if SIMPLIFY:
        seen: list[Term] = []
        for t in terms:
            if t in seen:
                continue
            if t.op == "not" and t.args[0] in seen:
                return true()
            if not_(t) in seen:
                return true()
            seen.append(t)
        terms = seen
    if not terms:
        return false()
    if len(terms) == 1:
        return terms[0]
    return _mk("or", tuple(terms), 0)


def xor_(a: Term, b: Term) -> Term:
    _require_bool(a, "xor")
    _require_bool(b, "xor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bool_const(a.payload != b.payload)
        if a.is_const:
            return not_(b) if a.payload else b
        if b.is_const:
            return not_(a) if b.payload else a
        if a is b:
            return false()
    return _mk("xor", (a, b), 0)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def ite_bool(c: Term, t: Term, e: Term) -> Term:
    _require_bool(c, "ite")
    _require_bool(t, "ite")
    _require_bool(e, "ite")
    if SIMPLIFY:
        if c.is_const:
            return t if c.payload else e
        if t is e:
            return t
    return and_(implies(c, t), implies(not_(c), e))


# --------------------------------------------------------------------------
# Comparisons
# --------------------------------------------------------------------------

def _to_signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        v -= 1 << width
    return v


def eq(a: Term, b: Term) -> Term:
    if a.width == 0 or b.width == 0:
        _require_bool(a, "eq")
        _require_bool(b, "eq")
        if SIMPLIFY:
            if a is b:
                return true()
            if a.is_const:
                return b if a.payload else not_(b)
            if b.is_const:
                return a if b.payload else not_(a)
        return not_(xor_(a, b))
    _require_same_width(a, b, "eq")
    if SIMPLIFY:
        if a is b:
            return true()
        if a.is_const and b.is_const:
            return bool_const(a.payload == b.payload)
    return _mk("eq", (a, b), 0)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    _require_bv(a, "ult")
    _require_same_width(a, b, "ult")
    if SIMPLIFY:
        if a is b:
            return false()
        if a.is_const and b.is_const:
            return bool_const(a.payload < b.payload)
        if b.is_const and b.payload == 0:
            return false()
        if a.is_const and a.payload == (1 << a.width) - 1:
            return false()
    return _mk("ult", (a, b), 0)


def ule(a: Term, b: Term) -> Term:
    return not_(ult(b, a))


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def uge(a: Term, b: Term) -> Term:
    return not_(ult(a, b))


def slt(a: Term, b: Term) -> Term:
    _require_bv(a, "slt")
    _require_same_width(a, b, "slt")
    if SIMPLIFY:
        if a is b:
            return false()
        if a.is_const and b.is_const:
            return bool_const(
                _to_signed(a.payload, a.width) < _to_signed(b.payload, b.width)
            )
    return _mk("slt", (a, b), 0)


def sle(a: Term, b: Term) -> Term:
    return not_(slt(b, a))


# --------------------------------------------------------------------------
# Bitvector operators
# --------------------------------------------------------------------------

def bv_not(a: Term) -> Term:
    _require_bv(a, "bvnot")
    if SIMPLIFY:
        if a.is_const:
            return bv_const(~a.payload, a.width)
        if a.op == "bvnot":
            return a.args[0]
    return _mk("bvnot", (a,), a.width)


def bv_neg(a: Term) -> Term:
    _require_bv(a, "bvneg")
    if SIMPLIFY and a.is_const:
        return bv_const(-a.payload, a.width)
    return bv_add(bv_not(a), bv_const(1, a.width))


def bv_and(a: Term, b: Term) -> Term:
    _require_bv(a, "bvand")
    _require_same_width(a, b, "bvand")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload & b.payload, a.width)
        ones = (1 << a.width) - 1
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    return bv_const(0, a.width)
                if x.payload == ones:
                    return y
        if a is b:
            return a
    return _mk("bvand", (a, b), a.width)


def bv_or(a: Term, b: Term) -> Term:
    _require_bv(a, "bvor")
    _require_same_width(a, b, "bvor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload | b.payload, a.width)
        ones = (1 << a.width) - 1
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    return y
                if x.payload == ones:
                    return bv_const(ones, a.width)
        if a is b:
            return a
    return _mk("bvor", (a, b), a.width)


def bv_xor(a: Term, b: Term) -> Term:
    _require_bv(a, "bvxor")
    _require_same_width(a, b, "bvxor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload ^ b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const and x.payload == 0:
                return y
        if a is b:
            return bv_const(0, a.width)
    return _mk("bvxor", (a, b), a.width)


def bv_add(a: Term, b: Term) -> Term:
    _require_bv(a, "bvadd")
    _require_same_width(a, b, "bvadd")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload + b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const and x.payload == 0:
                return y
    return _mk("bvadd", (a, b), a.width)


def bv_sub(a: Term, b: Term) -> Term:
    _require_bv(a, "bvsub")
    _require_same_width(a, b, "bvsub")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload - b.payload, a.width)
        if b.is_const and b.payload == 0:
            return a
        if a is b:
            return bv_const(0, a.width)
    return _mk("bvsub", (a, b), a.width)


def bv_mul(a: Term, b: Term) -> Term:
    _require_bv(a, "bvmul")
    _require_same_width(a, b, "bvmul")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload * b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    # Taint mitigation #1 in the paper relies on this
                    # rewrite: tainted * 0 == 0.
                    return bv_const(0, a.width)
                if x.payload == 1:
                    return y
    return _mk("bvmul", (a, b), a.width)


def bv_udiv(a: Term, b: Term) -> Term:
    _require_bv(a, "bvudiv")
    _require_same_width(a, b, "bvudiv")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            ones = (1 << a.width) - 1
            # SMT-LIB semantics: x udiv 0 == all-ones.
            return bv_const(ones if b.payload == 0 else a.payload // b.payload, a.width)
        if b.is_const and b.payload == 1:
            return a
    return _mk("bvudiv", (a, b), a.width)


def bv_urem(a: Term, b: Term) -> Term:
    _require_bv(a, "bvurem")
    _require_same_width(a, b, "bvurem")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            # SMT-LIB semantics: x urem 0 == x.
            return bv_const(a.payload if b.payload == 0 else a.payload % b.payload, a.width)
        if b.is_const and b.payload == 1:
            return bv_const(0, a.width)
    return _mk("bvurem", (a, b), a.width)


def bv_shl(a: Term, b: Term) -> Term:
    _require_bv(a, "bvshl")
    _require_same_width(a, b, "bvshl")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if sh >= a.width:
                return bv_const(0, a.width)
            if a.is_const:
                return bv_const(a.payload << sh, a.width)
    return _mk("bvshl", (a, b), a.width)


def bv_lshr(a: Term, b: Term) -> Term:
    _require_bv(a, "bvlshr")
    _require_same_width(a, b, "bvlshr")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if sh >= a.width:
                return bv_const(0, a.width)
            if a.is_const:
                return bv_const(a.payload >> sh, a.width)
    return _mk("bvlshr", (a, b), a.width)


def bv_ashr(a: Term, b: Term) -> Term:
    _require_bv(a, "bvashr")
    _require_same_width(a, b, "bvashr")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if a.is_const:
                return bv_const(_to_signed(a.payload, a.width) >> min(sh, a.width - 1), a.width)
    return _mk("bvashr", (a, b), a.width)


def concat(*parts: Term) -> Term:
    """Concatenate bitvectors; ``parts[0]`` becomes the most significant."""
    flat: list[Term] = []
    for p in parts:
        _require_bv(p, "concat")
        if p.op == "concat":
            flat.extend(p.args)
        else:
            flat.append(p)
    if not flat:
        raise ValueError("concat of zero parts")
    if SIMPLIFY:
        merged: list[Term] = []
        for p in flat:
            if merged and merged[-1].is_const and p.is_const:
                prev = merged.pop()
                merged.append(
                    bv_const((prev.payload << p.width) | p.payload, prev.width + p.width)
                )
            else:
                merged.append(p)
        flat = merged
    if len(flat) == 1:
        return flat[0]
    width = sum(p.width for p in flat)
    return _mk("concat", tuple(flat), width)


def extract(a: Term, hi: int, lo: int) -> Term:
    """Bits ``hi..lo`` inclusive, result width ``hi - lo + 1``."""
    _require_bv(a, "extract")
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"extract[{hi}:{lo}] out of range for width {a.width}")
    width = hi - lo + 1
    if SIMPLIFY:
        if width == a.width:
            return a
        if a.is_const:
            return bv_const(a.payload >> lo, width)
        if a.op == "extract":
            ihi, ilo = a.payload
            return extract(a.args[0], ilo + hi, ilo + lo)
        if a.op == "concat":
            # Narrow the extraction to the covered children.
            pos = a.width
            picked: list[Term] = []
            for child in a.args:
                lo_c = pos - child.width
                hi_c = pos - 1
                pos = lo_c
                if hi_c < lo or lo_c > hi:
                    continue
                chi = min(hi, hi_c) - lo_c
                clo = max(lo, lo_c) - lo_c
                picked.append(extract(child, chi, clo))
            if len(picked) == 1:
                return picked[0]
            return concat(*picked)
        if a.op == "zext":
            inner = a.args[0]
            if hi < inner.width:
                return extract(inner, hi, lo)
            if lo >= inner.width:
                return bv_const(0, width)
    return _mk("extract", (a,), width, (hi, lo))


def zero_extend(a: Term, extra: int) -> Term:
    _require_bv(a, "zext")
    if extra < 0:
        raise ValueError("negative zero_extend")
    if extra == 0:
        return a
    if SIMPLIFY and a.is_const:
        return bv_const(a.payload, a.width + extra)
    return _mk("zext", (a,), a.width + extra)


def sign_extend(a: Term, extra: int) -> Term:
    _require_bv(a, "sext")
    if extra < 0:
        raise ValueError("negative sign_extend")
    if extra == 0:
        return a
    if SIMPLIFY and a.is_const:
        return bv_const(_to_signed(a.payload, a.width), a.width + extra)
    return _mk("sext", (a,), a.width + extra)


def ite_bv(c: Term, t: Term, e: Term) -> Term:
    _require_bool(c, "ite")
    _require_bv(t, "ite")
    _require_same_width(t, e, "ite")
    if SIMPLIFY:
        if c.is_const:
            return t if c.payload else e
        if t is e:
            return t
    return _mk("ite", (c, t, e), t.width)


# --------------------------------------------------------------------------
# Traversal utilities
# --------------------------------------------------------------------------

def free_vars(t: Term) -> set[Term]:
    """All variable terms occurring in ``t``."""
    out: set[Term] = set()
    seen: set[Term] = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        if cur.is_var:
            out.add(cur)
        stack.extend(cur.args)
    return out


def substitute(t: Term, mapping: dict[Term, Term]) -> Term:
    """Replace variable (or arbitrary subterm) occurrences per ``mapping``."""
    cache: dict[Term, Term] = {}

    def go(cur: Term) -> Term:
        hit = mapping.get(cur)
        if hit is not None:
            return hit
        cached = cache.get(cur)
        if cached is not None:
            return cached
        if not cur.args:
            cache[cur] = cur
            return cur
        new_args = tuple(go(a) for a in cur.args)
        if all(n is o for n, o in zip(new_args, cur.args)):
            res = cur
        else:
            res = _rebuild(cur, new_args)
        cache[cur] = res
        return res

    return go(t)


def _rebuild(t: Term, args: tuple) -> Term:
    op = t.op
    if op == "not":
        return not_(args[0])
    if op == "and":
        return and_(*args)
    if op == "or":
        return or_(*args)
    if op == "xor":
        return xor_(args[0], args[1])
    if op == "eq":
        return eq(args[0], args[1])
    if op == "ult":
        return ult(args[0], args[1])
    if op == "slt":
        return slt(args[0], args[1])
    if op == "bvnot":
        return bv_not(args[0])
    if op == "bvand":
        return bv_and(args[0], args[1])
    if op == "bvor":
        return bv_or(args[0], args[1])
    if op == "bvxor":
        return bv_xor(args[0], args[1])
    if op == "bvadd":
        return bv_add(args[0], args[1])
    if op == "bvsub":
        return bv_sub(args[0], args[1])
    if op == "bvmul":
        return bv_mul(args[0], args[1])
    if op == "bvudiv":
        return bv_udiv(args[0], args[1])
    if op == "bvurem":
        return bv_urem(args[0], args[1])
    if op == "bvshl":
        return bv_shl(args[0], args[1])
    if op == "bvlshr":
        return bv_lshr(args[0], args[1])
    if op == "bvashr":
        return bv_ashr(args[0], args[1])
    if op == "concat":
        return concat(*args)
    if op == "extract":
        hi, lo = t.payload
        return extract(args[0], hi, lo)
    if op == "zext":
        return zero_extend(args[0], t.width - args[0].width)
    if op == "sext":
        return sign_extend(args[0], t.width - args[0].width)
    if op == "ite":
        return ite_bv(args[0], args[1], args[2])
    raise ValueError(f"cannot rebuild op {op}")
