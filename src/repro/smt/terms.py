"""Bitvector term language for the QF_BV solver substrate.

The paper's P4Testgen uses Z3 to solve path constraints.  Z3 is not
available in this environment, so we implement the fragment P4Testgen
actually needs: quantifier-free fixed-width bitvectors plus booleans.

Terms are immutable and hash-consed through a per-process **weak**
intern pool: structurally identical terms built while interning is
enabled are the same Python object, which makes equality checks O(1),
lets ``substitute``/``evaluate``/``preprocess`` memoize by the stored
intern id (:attr:`Term.tid`), and lets the bit-blaster cache per-term
results.  The pool holds only weak references, so terms die with their
last external reference instead of accumulating across ``Engine`` runs.

Interning can be disabled (:func:`set_interning`, the ``--no-intern``
ablation).  Correctness must not depend on the switch: ``__hash__`` is
always the precomputed *structural* hash and ``__eq__`` falls back to
an iterative structural walk whenever the O(1) shortcuts don't apply,
so term-keyed sets/dicts behave identically in both modes and emitted
test suites stay byte-for-byte the same.

Smart constructors perform algebraic simplification (constant folding,
identities) unless the module-level switch :data:`SIMPLIFY` is disabled
(used by the ablation benchmark).
"""

from __future__ import annotations

import weakref
from typing import Iterable, Optional

__all__ = [
    "Term",
    "BoolTerm",
    "BvTerm",
    "SIMPLIFY",
    "set_simplify",
    "simplification_enabled",
    "set_interning",
    "interning_enabled",
    "mk_term",
    "intern_stats",
    "reset_intern_stats",
    "clear_intern_pool",
    "intern_pool_size",
    "true",
    "false",
    "bool_const",
    "bool_var",
    "bv_const",
    "bv_var",
    "not_",
    "and_",
    "or_",
    "xor_",
    "implies",
    "ite_bool",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "bv_not",
    "bv_neg",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_add",
    "bv_sub",
    "bv_mul",
    "bv_udiv",
    "bv_urem",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "concat",
    "extract",
    "zero_extend",
    "sign_extend",
    "ite_bv",
    "free_vars",
    "substitute",
]

# --------------------------------------------------------------------------
# Global switches (for the SMT ablation benchmarks).
# --------------------------------------------------------------------------

SIMPLIFY = True
INTERNING = True


def set_simplify(enabled: bool) -> None:
    """Enable or disable constructor-time algebraic simplification."""
    global SIMPLIFY
    SIMPLIFY = bool(enabled)


def simplification_enabled() -> bool:
    return SIMPLIFY


def set_interning(enabled: bool) -> None:
    """Enable or disable hash-consing through the weak intern pool.

    Turning interning off is an ablation: terms become plain objects
    with structural equality.  Answers, models, and emitted suites are
    identical either way; only allocation/equality costs change.
    """
    global INTERNING
    INTERNING = bool(enabled)


def interning_enabled() -> bool:
    return INTERNING


# --------------------------------------------------------------------------
# Term representation
# --------------------------------------------------------------------------

# Weak intern pool: key -> term, value refs are weak so a term (and its
# pool entry) dies with its last external reference.  The key tuple
# references the term's *children* — exactly the references the term
# itself holds — so the pool adds no retention beyond the DAG's own.
_POOL: "weakref.WeakValueDictionary[tuple, Term]" = weakref.WeakValueDictionary()
# Pool generation.  Two distinct live objects interned under the same
# generation are guaranteed structurally distinct (the pool enforced
# uniqueness while both were being created), which gives __eq__ an O(1)
# "False" shortcut.  clear_intern_pool() bumps the generation so terms
# surviving a clear never shortcut against newer interns.
_POOL_GEN = 1
_NEXT_TID = 0
_INTERN_HITS = 0
_INTERN_MISSES = 0


class Term:
    """A node in the hash-consed term DAG.

    Attributes:
        op: operator tag, e.g. ``"bvadd"``, ``"and"``, ``"const"``.
        args: child terms.
        width: bit width for bitvector terms, ``0`` for booleans.
        payload: operator-specific extra data (constant value, variable
            name, extract bounds).
        tid: process-unique intern id (monotonic).  Memo tables key on
            it: O(1), and never collides across pool generations.
    """

    __slots__ = ("op", "args", "width", "payload", "tid", "_hash", "_gen",
                 "__weakref__")

    def __init__(self, op: str, args: tuple, width: int, payload=None):
        global _NEXT_TID
        self.op = op
        self.args = args
        self.width = width
        self.payload = payload
        # Structural hash, not the intern id: hashes must agree between
        # the interning-on and interning-off modes so that set/dict
        # iteration orders — and therefore emitted suites — match.
        self._hash = hash((op, args, width, payload))
        _NEXT_TID += 1
        self.tid = _NEXT_TID
        self._gen = 0  # 0 = not interned; else the pool generation

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(other) is not Term:
            return NotImplemented
        return _structurally_equal(self, other)

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __reduce__(self):
        # Re-intern on unpickle so terms crossing a process boundary
        # land in the receiving process's pool.
        return (_mk, (self.op, self.args, self.width, self.payload))

    # -- convenience predicates ------------------------------------------

    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def is_var(self) -> bool:
        return self.op == "var"

    @property
    def value(self):
        """Constant payload (int for BV, bool for boolean constants)."""
        if self.op != "const":
            raise ValueError(f"term {self.op} is not a constant")
        return self.payload

    @property
    def name(self) -> str:
        if self.op != "var":
            raise ValueError(f"term {self.op} is not a variable")
        return self.payload

    def __repr__(self) -> str:
        return _format(self)


# ``BoolTerm``/``BvTerm`` are documentation aliases; both are Term.
BoolTerm = Term
BvTerm = Term


def _structurally_equal(a: Term, b: Term) -> bool:
    """Iterative structural equality (the interning-off fallback).

    With interning on, two distinct live objects from the same pool
    generation cannot be structurally equal, so the walk answers each
    pair in O(1) via the generation shortcut.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        gen = x._gen
        if gen and gen == y._gen:
            return False  # same live pool generation, distinct objects
        if (x._hash != y._hash or x.op != y.op or x.width != y.width
                or x.payload != y.payload or len(x.args) != len(y.args)):
            return False
        stack.extend(zip(x.args, y.args))
    return True


def _mk(op: str, args: tuple, width: int, payload=None) -> Term:
    global _INTERN_HITS, _INTERN_MISSES
    if INTERNING:
        key = (op, args, width, payload)
        t = _POOL.get(key)
        if t is not None:
            _INTERN_HITS += 1
            return t
        _INTERN_MISSES += 1
        t = Term(op, args, width, payload)
        t._gen = _POOL_GEN
        _POOL[key] = t
        return t
    return Term(op, args, width, payload)


#: Public constructor-level entry point (the raw node maker behind the
#: smart constructors).  Interns when interning is enabled.
mk_term = _mk


def intern_stats() -> dict:
    """Pool counters: hits/misses since the last reset, live size."""
    total = _INTERN_HITS + _INTERN_MISSES
    return {
        "hits": _INTERN_HITS,
        "misses": _INTERN_MISSES,
        "hit_rate": (_INTERN_HITS / total) if total else 0.0,
        "pool_size": len(_POOL),
        "generation": _POOL_GEN,
    }


def reset_intern_stats() -> None:
    global _INTERN_HITS, _INTERN_MISSES
    _INTERN_HITS = 0
    _INTERN_MISSES = 0


def intern_pool_size() -> int:
    return len(_POOL)


def clear_intern_pool() -> None:
    """Drop all pool entries and start a new generation.

    Surviving terms (still referenced elsewhere) keep working: their
    old generation never matches post-clear interns, so equality falls
    back to the structural walk instead of wrongly shortcutting.
    """
    global _POOL_GEN
    _POOL.clear()
    _POOL_GEN += 1


# --------------------------------------------------------------------------
# Printing (visit-once, let-labels for shared subterms)
# --------------------------------------------------------------------------

# Beyond this many distinct nodes repr degrades to a summary: a repr is
# for debugging, not serialization, and megaterm dumps help nobody.
_REPR_NODE_LIMIT = 512


def _format(root: Term) -> str:
    """Render a term DAG in O(nodes): every node prints once.

    Shared non-leaf nodes are bound to ``%k`` labels emitted in a
    leading ``let`` block, so heavily shared DAGs (the common case
    after interning) print in linear size instead of exponential.
    """
    counts: dict[int, int] = {}
    stack = [root]
    while stack:
        cur = stack.pop()
        seen = counts.get(cur.tid, 0)
        counts[cur.tid] = seen + 1
        if not seen:
            if len(counts) > _REPR_NODE_LIMIT:
                return f"<Term {root.op}/{root.width} >{_REPR_NODE_LIMIT} nodes>"
            stack.extend(cur.args)

    defs: list[str] = []
    rendered: dict[int, str] = {}
    stack = [root]
    while stack:
        cur = stack[-1]
        if cur.tid in rendered:
            stack.pop()
            continue
        if cur.op == "const":
            if cur.width == 0:
                rendered[cur.tid] = "true" if cur.payload else "false"
            else:
                rendered[cur.tid] = f"{cur.width}w{cur.payload:#x}"
            stack.pop()
            continue
        if cur.op == "var":
            rendered[cur.tid] = f"{cur.payload}:{cur.width or 'bool'}"
            stack.pop()
            continue
        missing = [a for a in cur.args if a.tid not in rendered]
        if missing:
            stack.extend(missing)
            continue
        inner = " ".join(rendered[a.tid] for a in cur.args)
        if cur.op == "extract":
            hi, lo = cur.payload
            text = f"(extract[{hi}:{lo}] {inner})"
        else:
            text = f"({cur.op} {inner})"
        if counts[cur.tid] > 1 and cur is not root:
            label = f"%{len(defs)}"
            defs.append(f"{label} := {text}")
            text = label
        rendered[cur.tid] = text
        stack.pop()
    body = rendered[root.tid]
    if defs:
        return "(let [" + "; ".join(defs) + "] " + body + ")"
    return body


# --------------------------------------------------------------------------
# Constructors: constants and variables
# --------------------------------------------------------------------------

def bool_const(v: bool) -> Term:
    return _mk("const", (), 0, bool(v))


def true() -> Term:
    return bool_const(True)


def false() -> Term:
    return bool_const(False)


def bool_var(name: str) -> Term:
    return _mk("var", (), 0, name)


def bv_const(value: int, width: int) -> Term:
    if width <= 0:
        raise ValueError(f"bitvector width must be positive, got {width}")
    return _mk("const", (), width, value & ((1 << width) - 1))


def bv_var(name: str, width: int) -> Term:
    if width <= 0:
        raise ValueError(f"bitvector width must be positive, got {width}")
    return _mk("var", (), width, name)


def _require_bv(t: Term, ctx: str) -> None:
    if t.width == 0:
        raise TypeError(f"{ctx}: expected bitvector, got boolean {t!r}")


def _require_bool(t: Term, ctx: str) -> None:
    if t.width != 0:
        raise TypeError(f"{ctx}: expected boolean, got bv<{t.width}> {t!r}")


def _require_same_width(a: Term, b: Term, ctx: str) -> None:
    if a.width != b.width:
        raise TypeError(f"{ctx}: width mismatch {a.width} vs {b.width}")


# --------------------------------------------------------------------------
# Boolean connectives
# --------------------------------------------------------------------------
#
# NOTE on equality in simplification guards: these use ``==`` rather
# than ``is`` so the rewrites fire identically with interning disabled
# (where structurally equal terms may be distinct objects).  With
# interning on, ``==`` costs the same as ``is`` — the identity fast
# path answers first.

def not_(a: Term) -> Term:
    _require_bool(a, "not")
    if SIMPLIFY:
        if a.is_const:
            return bool_const(not a.payload)
        if a.op == "not":
            return a.args[0]
    return _mk("not", (a,), 0)


def _flatten(op: str, args: Iterable[Term]):
    for a in args:
        if a.op == op:
            yield from a.args
        else:
            yield a


def and_(*args: Term) -> Term:
    terms = []
    for a in _flatten("and", args):
        _require_bool(a, "and")
        if SIMPLIFY and a.is_const:
            if not a.payload:
                return false()
            continue
        terms.append(a)
    if SIMPLIFY:
        seen: list[Term] = []
        for t in terms:
            if t in seen:
                continue
            if t.op == "not" and t.args[0] in seen:
                return false()
            if not_(t) in seen:
                return false()
            seen.append(t)
        terms = seen
    if not terms:
        return true()
    if len(terms) == 1:
        return terms[0]
    return _mk("and", tuple(terms), 0)


def or_(*args: Term) -> Term:
    terms = []
    for a in _flatten("or", args):
        _require_bool(a, "or")
        if SIMPLIFY and a.is_const:
            if a.payload:
                return true()
            continue
        terms.append(a)
    if SIMPLIFY:
        seen: list[Term] = []
        for t in terms:
            if t in seen:
                continue
            if t.op == "not" and t.args[0] in seen:
                return true()
            if not_(t) in seen:
                return true()
            seen.append(t)
        terms = seen
    if not terms:
        return false()
    if len(terms) == 1:
        return terms[0]
    return _mk("or", tuple(terms), 0)


def xor_(a: Term, b: Term) -> Term:
    _require_bool(a, "xor")
    _require_bool(b, "xor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bool_const(a.payload != b.payload)
        if a.is_const:
            return not_(b) if a.payload else b
        if b.is_const:
            return not_(a) if b.payload else a
        if a == b:
            return false()
    return _mk("xor", (a, b), 0)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def ite_bool(c: Term, t: Term, e: Term) -> Term:
    _require_bool(c, "ite")
    _require_bool(t, "ite")
    _require_bool(e, "ite")
    if SIMPLIFY:
        if c.is_const:
            return t if c.payload else e
        if t == e:
            return t
    return and_(implies(c, t), implies(not_(c), e))


# --------------------------------------------------------------------------
# Comparisons
# --------------------------------------------------------------------------

def _to_signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        v -= 1 << width
    return v


def eq(a: Term, b: Term) -> Term:
    if a.width == 0 or b.width == 0:
        _require_bool(a, "eq")
        _require_bool(b, "eq")
        if SIMPLIFY:
            if a == b:
                return true()
            if a.is_const:
                return b if a.payload else not_(b)
            if b.is_const:
                return a if b.payload else not_(a)
        return not_(xor_(a, b))
    _require_same_width(a, b, "eq")
    if SIMPLIFY:
        if a == b:
            return true()
        if a.is_const and b.is_const:
            return bool_const(a.payload == b.payload)
    return _mk("eq", (a, b), 0)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    _require_bv(a, "ult")
    _require_same_width(a, b, "ult")
    if SIMPLIFY:
        if a == b:
            return false()
        if a.is_const and b.is_const:
            return bool_const(a.payload < b.payload)
        if b.is_const and b.payload == 0:
            return false()
        if a.is_const and a.payload == (1 << a.width) - 1:
            return false()
    return _mk("ult", (a, b), 0)


def ule(a: Term, b: Term) -> Term:
    return not_(ult(b, a))


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def uge(a: Term, b: Term) -> Term:
    return not_(ult(a, b))


def slt(a: Term, b: Term) -> Term:
    _require_bv(a, "slt")
    _require_same_width(a, b, "slt")
    if SIMPLIFY:
        if a == b:
            return false()
        if a.is_const and b.is_const:
            return bool_const(
                _to_signed(a.payload, a.width) < _to_signed(b.payload, b.width)
            )
    return _mk("slt", (a, b), 0)


def sle(a: Term, b: Term) -> Term:
    return not_(slt(b, a))


# --------------------------------------------------------------------------
# Bitvector operators
# --------------------------------------------------------------------------

def bv_not(a: Term) -> Term:
    _require_bv(a, "bvnot")
    if SIMPLIFY:
        if a.is_const:
            return bv_const(~a.payload, a.width)
        if a.op == "bvnot":
            return a.args[0]
    return _mk("bvnot", (a,), a.width)


def bv_neg(a: Term) -> Term:
    _require_bv(a, "bvneg")
    if SIMPLIFY and a.is_const:
        return bv_const(-a.payload, a.width)
    return bv_add(bv_not(a), bv_const(1, a.width))


def bv_and(a: Term, b: Term) -> Term:
    _require_bv(a, "bvand")
    _require_same_width(a, b, "bvand")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload & b.payload, a.width)
        ones = (1 << a.width) - 1
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    return bv_const(0, a.width)
                if x.payload == ones:
                    return y
        if a == b:
            return a
    return _mk("bvand", (a, b), a.width)


def bv_or(a: Term, b: Term) -> Term:
    _require_bv(a, "bvor")
    _require_same_width(a, b, "bvor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload | b.payload, a.width)
        ones = (1 << a.width) - 1
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    return y
                if x.payload == ones:
                    return bv_const(ones, a.width)
        if a == b:
            return a
    return _mk("bvor", (a, b), a.width)


def bv_xor(a: Term, b: Term) -> Term:
    _require_bv(a, "bvxor")
    _require_same_width(a, b, "bvxor")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload ^ b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const and x.payload == 0:
                return y
        if a == b:
            return bv_const(0, a.width)
    return _mk("bvxor", (a, b), a.width)


def bv_add(a: Term, b: Term) -> Term:
    _require_bv(a, "bvadd")
    _require_same_width(a, b, "bvadd")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload + b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const and x.payload == 0:
                return y
    return _mk("bvadd", (a, b), a.width)


def bv_sub(a: Term, b: Term) -> Term:
    _require_bv(a, "bvsub")
    _require_same_width(a, b, "bvsub")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload - b.payload, a.width)
        if b.is_const and b.payload == 0:
            return a
        if a == b:
            return bv_const(0, a.width)
    return _mk("bvsub", (a, b), a.width)


def bv_mul(a: Term, b: Term) -> Term:
    _require_bv(a, "bvmul")
    _require_same_width(a, b, "bvmul")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            return bv_const(a.payload * b.payload, a.width)
        for x, y in ((a, b), (b, a)):
            if x.is_const:
                if x.payload == 0:
                    # Taint mitigation #1 in the paper relies on this
                    # rewrite: tainted * 0 == 0.
                    return bv_const(0, a.width)
                if x.payload == 1:
                    return y
    return _mk("bvmul", (a, b), a.width)


def bv_udiv(a: Term, b: Term) -> Term:
    _require_bv(a, "bvudiv")
    _require_same_width(a, b, "bvudiv")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            ones = (1 << a.width) - 1
            # SMT-LIB semantics: x udiv 0 == all-ones.
            return bv_const(ones if b.payload == 0 else a.payload // b.payload, a.width)
        if b.is_const and b.payload == 1:
            return a
    return _mk("bvudiv", (a, b), a.width)


def bv_urem(a: Term, b: Term) -> Term:
    _require_bv(a, "bvurem")
    _require_same_width(a, b, "bvurem")
    if SIMPLIFY:
        if a.is_const and b.is_const:
            # SMT-LIB semantics: x urem 0 == x.
            return bv_const(a.payload if b.payload == 0 else a.payload % b.payload, a.width)
        if b.is_const and b.payload == 1:
            return bv_const(0, a.width)
    return _mk("bvurem", (a, b), a.width)


def bv_shl(a: Term, b: Term) -> Term:
    _require_bv(a, "bvshl")
    _require_same_width(a, b, "bvshl")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if sh >= a.width:
                return bv_const(0, a.width)
            if a.is_const:
                return bv_const(a.payload << sh, a.width)
    return _mk("bvshl", (a, b), a.width)


def bv_lshr(a: Term, b: Term) -> Term:
    _require_bv(a, "bvlshr")
    _require_same_width(a, b, "bvlshr")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if sh >= a.width:
                return bv_const(0, a.width)
            if a.is_const:
                return bv_const(a.payload >> sh, a.width)
    return _mk("bvlshr", (a, b), a.width)


def bv_ashr(a: Term, b: Term) -> Term:
    _require_bv(a, "bvashr")
    _require_same_width(a, b, "bvashr")
    if SIMPLIFY:
        if b.is_const:
            sh = b.payload
            if sh == 0:
                return a
            if a.is_const:
                return bv_const(_to_signed(a.payload, a.width) >> min(sh, a.width - 1), a.width)
    return _mk("bvashr", (a, b), a.width)


def concat(*parts: Term) -> Term:
    """Concatenate bitvectors; ``parts[0]`` becomes the most significant."""
    flat: list[Term] = []
    for p in parts:
        _require_bv(p, "concat")
        if p.op == "concat":
            flat.extend(p.args)
        else:
            flat.append(p)
    if not flat:
        raise ValueError("concat of zero parts")
    if SIMPLIFY:
        merged: list[Term] = []
        for p in flat:
            if merged and merged[-1].is_const and p.is_const:
                prev = merged.pop()
                merged.append(
                    bv_const((prev.payload << p.width) | p.payload, prev.width + p.width)
                )
            else:
                merged.append(p)
        flat = merged
    if len(flat) == 1:
        return flat[0]
    width = sum(p.width for p in flat)
    return _mk("concat", tuple(flat), width)


def extract(a: Term, hi: int, lo: int) -> Term:
    """Bits ``hi..lo`` inclusive, result width ``hi - lo + 1``."""
    _require_bv(a, "extract")
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"extract[{hi}:{lo}] out of range for width {a.width}")
    width = hi - lo + 1
    if SIMPLIFY:
        if width == a.width:
            return a
        if a.is_const:
            return bv_const(a.payload >> lo, width)
        if a.op == "extract":
            ihi, ilo = a.payload
            return extract(a.args[0], ilo + hi, ilo + lo)
        if a.op == "concat":
            # Narrow the extraction to the covered children.
            pos = a.width
            picked: list[Term] = []
            for child in a.args:
                lo_c = pos - child.width
                hi_c = pos - 1
                pos = lo_c
                if hi_c < lo or lo_c > hi:
                    continue
                chi = min(hi, hi_c) - lo_c
                clo = max(lo, lo_c) - lo_c
                picked.append(extract(child, chi, clo))
            if len(picked) == 1:
                return picked[0]
            return concat(*picked)
        if a.op == "zext":
            inner = a.args[0]
            if hi < inner.width:
                return extract(inner, hi, lo)
            if lo >= inner.width:
                return bv_const(0, width)
    return _mk("extract", (a,), width, (hi, lo))


def zero_extend(a: Term, extra: int) -> Term:
    _require_bv(a, "zext")
    if extra < 0:
        raise ValueError("negative zero_extend")
    if extra == 0:
        return a
    if SIMPLIFY and a.is_const:
        return bv_const(a.payload, a.width + extra)
    return _mk("zext", (a,), a.width + extra)


def sign_extend(a: Term, extra: int) -> Term:
    _require_bv(a, "sext")
    if extra < 0:
        raise ValueError("negative sign_extend")
    if extra == 0:
        return a
    if SIMPLIFY and a.is_const:
        return bv_const(_to_signed(a.payload, a.width), a.width + extra)
    return _mk("sext", (a,), a.width + extra)


def ite_bv(c: Term, t: Term, e: Term) -> Term:
    _require_bool(c, "ite")
    _require_bv(t, "ite")
    _require_same_width(t, e, "ite")
    if SIMPLIFY:
        if c.is_const:
            return t if c.payload else e
        if t == e:
            return t
    return _mk("ite", (c, t, e), t.width)


# --------------------------------------------------------------------------
# Traversal utilities
# --------------------------------------------------------------------------

def free_vars(t: Term) -> set[Term]:
    """All variable terms occurring in ``t``."""
    out: set[Term] = set()
    seen: set[int] = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if cur.tid in seen:
            continue
        seen.add(cur.tid)
        if cur.is_var:
            out.add(cur)
        stack.extend(cur.args)
    return out


def substitute(t: Term, mapping: dict[Term, Term]) -> Term:
    """Replace variable (or arbitrary subterm) occurrences per ``mapping``.

    Iterative (explicit stack) and memoized by intern id, so deep
    chains neither hit the recursion limit nor re-visit shared nodes.
    """
    if not mapping:
        return t
    done: dict[int, Term] = {}
    stack: list[Term] = [t]
    while stack:
        cur = stack[-1]
        if cur.tid in done:
            stack.pop()
            continue
        hit = mapping.get(cur)
        if hit is not None:
            done[cur.tid] = hit
            stack.pop()
            continue
        if not cur.args:
            done[cur.tid] = cur
            stack.pop()
            continue
        missing = [a for a in cur.args if a.tid not in done]
        if missing:
            stack.extend(missing)
            continue
        new_args = tuple(done[a.tid] for a in cur.args)
        if all(n is o for n, o in zip(new_args, cur.args)):
            done[cur.tid] = cur
        else:
            done[cur.tid] = _rebuild(cur, new_args)
        stack.pop()
    return done[t.tid]


def _rebuild(t: Term, args: tuple) -> Term:
    op = t.op
    if op == "not":
        return not_(args[0])
    if op == "and":
        return and_(*args)
    if op == "or":
        return or_(*args)
    if op == "xor":
        return xor_(args[0], args[1])
    if op == "eq":
        return eq(args[0], args[1])
    if op == "ult":
        return ult(args[0], args[1])
    if op == "slt":
        return slt(args[0], args[1])
    if op == "bvnot":
        return bv_not(args[0])
    if op == "bvand":
        return bv_and(args[0], args[1])
    if op == "bvor":
        return bv_or(args[0], args[1])
    if op == "bvxor":
        return bv_xor(args[0], args[1])
    if op == "bvadd":
        return bv_add(args[0], args[1])
    if op == "bvsub":
        return bv_sub(args[0], args[1])
    if op == "bvmul":
        return bv_mul(args[0], args[1])
    if op == "bvudiv":
        return bv_udiv(args[0], args[1])
    if op == "bvurem":
        return bv_urem(args[0], args[1])
    if op == "bvshl":
        return bv_shl(args[0], args[1])
    if op == "bvlshr":
        return bv_lshr(args[0], args[1])
    if op == "bvashr":
        return bv_ashr(args[0], args[1])
    if op == "concat":
        return concat(*args)
    if op == "extract":
        hi, lo = t.payload
        return extract(args[0], hi, lo)
    if op == "zext":
        return zero_extend(args[0], t.width - args[0].width)
    if op == "sext":
        return sign_extend(args[0], t.width - args[0].width)
    if op == "ite":
        return ite_bv(args[0], args[1], args[2])
    raise ValueError(f"cannot rebuild op {op}")
