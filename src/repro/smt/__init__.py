"""QF_BV SMT solver substrate (stand-in for Z3, which the paper uses).

Public surface:

- :mod:`repro.smt.terms` — hash-consed bitvector/boolean term DAG with
  constructor-time simplification;
- :class:`repro.smt.solver.Solver` — incremental solver facade with
  push/pop, assumptions, and model extraction;
- :class:`repro.smt.cache.SolveCache` — canonical solve cache that
  memoizes check answers and models across overlapping queries;
- :func:`repro.smt.evaluate.evaluate` — concrete big-step evaluation,
  used by the concolic loop and for cross-checking;
- :class:`repro.smt.elide.QueryElider` /
  :func:`repro.smt.preprocess.preprocess_conjuncts` — the query-elision
  pipeline that answers checks before they reach bit-blasting;
- :mod:`repro.smt.backends` — pluggable solver back ends
  (:func:`register_solver`), the :class:`PortfolioSolver` racer and the
  :class:`CrossChecker` differential validator.
"""

from . import terms
from .backends import (CrossChecker, CrossCheckError, PortfolioSolver,
                       SolverBackend, available_solver_names,
                       build_portfolio, make_solver, register_solver,
                       solver_names)
from .bitblast import (SharedBlastCache, clear_shared_blast_cache,
                       shared_blast_cache)
from .cache import SolveCache
from .elide import QueryElider
from .evaluate import EvaluationError, all_hold, evaluate, holds
from .preprocess import PreprocessResult, preprocess_conjuncts
from .solver import Model, SolveResult, Solver, SolverStats
from .terms import (clear_intern_pool, intern_stats, interning_enabled,
                    reset_intern_stats, set_interning)

__all__ = [
    "terms", "Solver", "Model", "SolverStats", "SolveResult", "SolveCache",
    "evaluate", "holds", "all_hold", "EvaluationError",
    "QueryElider", "PreprocessResult", "preprocess_conjuncts",
    "SharedBlastCache", "shared_blast_cache", "clear_shared_blast_cache",
    "set_interning", "interning_enabled", "intern_stats",
    "reset_intern_stats", "clear_intern_pool",
    "SolverBackend", "PortfolioSolver", "CrossChecker", "CrossCheckError",
    "register_solver", "make_solver", "solver_names",
    "available_solver_names", "build_portfolio",
]
