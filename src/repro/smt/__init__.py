"""QF_BV SMT solver substrate (stand-in for Z3, which the paper uses).

Public surface:

- :mod:`repro.smt.terms` — hash-consed bitvector/boolean term DAG with
  constructor-time simplification;
- :class:`repro.smt.solver.Solver` — incremental solver facade with
  push/pop, assumptions, and model extraction;
- :func:`repro.smt.evaluate.evaluate` — concrete big-step evaluation,
  used by the concolic loop and for cross-checking.
"""

from . import terms
from .evaluate import EvaluationError, evaluate
from .solver import Model, Solver, SolverStats

__all__ = ["terms", "Solver", "Model", "SolverStats", "evaluate", "EvaluationError"]
