"""A CDCL SAT solver with two-watched-literal propagation.

This is the bottom layer of the solver substrate that stands in for Z3.
Features: 1-UIP conflict-clause learning, VSIDS-style activity decay,
phase saving, Luby restarts, and solving under assumptions (which is
how the :class:`repro.smt.solver.Solver` facade implements incremental
push/pop).

Literal encoding: variables are positive integers ``1..n``; a literal
is ``+v`` or ``-v`` (DIMACS convention).
"""

from __future__ import annotations

import heapq

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 ...

    Positions inside a sub-sequence recurse via modulo, not plain
    subtraction — the subtractive variant underflowed for i=4, 5, 8,
    ... (``1 << -1``) as soon as a solve reached its fourth restart.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """CDCL solver over clauses of DIMACS-style integer literals."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        # watches[lit] -> clause indices watching lit (lit indexed by
        # its position in self._watch dict).
        self._watch: dict[int, list[int]] = {}
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, int | None] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.activity: dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        # Lazy max-heap of (-activity, var) for O(log n) decisions.
        self._order: list[tuple[float, int]] = []
        self.saved_phase: dict[int, bool] = {}
        self._qhead = 0
        self._ok = True
        # statistics
        self.stats = {
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "learned": 0,
            "restarts": 0,
        }

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self.activity[v] = 0.0
        heapq.heappush(self._order, (0.0, v))
        return v

    def _ensure_vars(self, clause) -> None:
        for lit in clause:
            v = abs(lit)
            while self.num_vars < v:
                self.new_var()

    def add_clause(self, clause: list[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        if self.trail_lim:
            # A previous solve() may have left a partial assignment; new
            # clauses are always added at decision level 0.
            self._backjump(0)
        self._ensure_vars(clause)
        # Deduplicate and detect tautology.
        seen: set[int] = set()
        out: list[int] = []
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return True  # tautology, clause is vacuous
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        # Drop literals already false at level 0; satisfied at level 0 -> skip.
        if not self.trail_lim:
            filtered = []
            for lit in out:
                val = self._value(lit)
                if val is True:
                    return True
                if val is None:
                    filtered.append(lit)
            out = filtered
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self.trail_lim:
                if self._value(out[0]) is False:
                    self._ok = False
                    return False
                if self._value(out[0]) is None:
                    self._enqueue(out[0], None)
                    if self._propagate() is not None:
                        self._ok = False
                        return False
                return True
            # During search units shouldn't be added externally.
        idx = len(self.clauses)
        self.clauses.append(out)
        self._watch.setdefault(out[0], []).append(idx)
        self._watch.setdefault(out[1], []).append(idx)
        return True

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _value(self, lit: int):
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason_clause: int | None) -> None:
        v = abs(lit)
        self.assign[v] = lit > 0
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason_clause
        self.trail.append(lit)

    def _propagate(self) -> int | None:
        """Unit propagation; returns conflicting clause index or None."""
        while self._qhead < len(self.trail):
            lit = self.trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watch.get(false_lit)
            if not watchers:
                continue
            new_watchers: list[int] = []
            i = 0
            n = len(watchers)
            while i < n:
                ci = watchers[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watchers.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(ci)
                if self._value(first) is False:
                    # Conflict: restore remaining watchers.
                    new_watchers.extend(watchers[i:])
                    self._watch[false_lit] = new_watchers
                    self._qhead = len(self.trail)
                    return ci
                self.stats["propagations"] += 1
                self._enqueue(first, ci)
            self._watch[false_lit] = new_watchers
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump(self, v: int) -> None:
        self.activity[v] = self.activity.get(v, 0.0) + self.var_inc
        if self.activity[v] > 1e100:
            for key in self.activity:
                self.activity[key] *= 1e-100
            self.var_inc *= 1e-100
            self._order = [(-self.activity[var], var) for var in self.activity
                           if var not in self.assign]
            heapq.heapify(self._order)
            return
        heapq.heappush(self._order, (-self.activity[v], v))

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1-UIP learning; returns (learned clause, backjump level)."""
        cur_level = len(self.trail_lim)
        learned: list[int] = [0]  # placeholder for asserting literal
        seen: set[int] = set()
        counter = 0
        p: int | None = None
        clause = self.clauses[conflict]
        idx = len(self.trail) - 1
        while True:
            for lit in clause:
                if p is not None and lit == p:
                    continue
                v = abs(lit)
                if v in seen or self.level.get(v, 0) == 0:
                    continue
                seen.add(v)
                self._bump(v)
                if self.level[v] == cur_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find next literal on trail to resolve on.
            while abs(self.trail[idx]) not in seen:
                idx -= 1
            p = self.trail[idx]
            idx -= 1
            v = abs(p)
            seen.discard(v)
            counter -= 1
            if counter == 0:
                learned[0] = -p
                break
            rc = self.reason[v]
            assert rc is not None, "reached a decision before the 1-UIP"
            clause = self.clauses[rc]
        # Compute backjump level = max level of the other literals.
        if len(learned) == 1:
            bj = 0
        else:
            bj = max(self.level[abs(lit)] for lit in learned[1:])
        return learned, bj

    def _backjump(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            lim = self.trail_lim.pop()
            while len(self.trail) > lim:
                lit = self.trail.pop()
                v = abs(lit)
                self.saved_phase[v] = self.assign[v]
                del self.assign[v]
                del self.level[v]
                del self.reason[v]
                heapq.heappush(self._order, (-self.activity.get(v, 0.0), v))
            self._qhead = min(self._qhead, len(self.trail))
        self._qhead = min(self._qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Decision heuristics
    # ------------------------------------------------------------------

    def _decide(self) -> int | None:
        # Duplicate heap entries are fine: every bump pushes a fresh one
        # and _backjump re-pushes unassigned variables.
        while self._order:
            _neg_act, v = heapq.heappop(self._order)
            if v not in self.assign:
                phase = self.saved_phase.get(v, False)
                return v if phase else -v
        # Heap exhausted: fall back to a linear scan (rare).
        for v in range(1, self.num_vars + 1):
            if v not in self.assign:
                phase = self.saved_phase.get(v, False)
                return v if phase else -v
        return None

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None,
              conflict_budget: int | None = None) -> str:
        """Solve under the given assumptions; returns ``SAT`` or ``UNSAT``.

        With ``conflict_budget`` the search stops after that many
        conflicts and returns ``UNKNOWN``, leaving the solver at
        decision level 0 with everything it learned retained — calling
        ``solve`` again (with or without a budget) resumes where the
        previous slice left off.  This is how the portfolio layer
        classifies hard queries and interleaves native search with
        external back-end polling (see :mod:`repro.smt.backends`).
        """
        if not self._ok:
            return UNSAT
        assumptions = list(assumptions or [])
        self._backjump(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return UNSAT

        restart_count = 1
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_this_restart = 0
        conflicts_this_call = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_this_restart += 1
                conflicts_this_call += 1
                if not self.trail_lim:
                    return UNSAT
                # If the conflict is below the assumption levels we
                # cannot recover by learning alone when it involves only
                # assumptions; the analyze/backjump loop handles it by
                # backjumping into assumption territory and re-deciding.
                learned, bj = self._analyze(conflict)
                self._backjump(bj)
                if len(learned) == 1:
                    if self._value(learned[0]) is False:
                        return UNSAT
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learned)
                    self._watch.setdefault(learned[0], []).append(idx)
                    self._watch.setdefault(learned[1], []).append(idx)
                    self.stats["learned"] += 1
                    self._enqueue(learned[0], idx)
                self.var_inc /= self.var_decay
                if (conflict_budget is not None
                        and conflicts_this_call >= conflict_budget):
                    # Progress survives the pause through the clause
                    # database (learned clauses and level-0 units stay);
                    # park the search at level 0 and hand control back.
                    self._backjump(0)
                    return UNKNOWN
                continue

            if conflicts_this_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_until_restart = 32 * _luby(restart_count)
                conflicts_this_restart = 0
                self._backjump(0)
                continue

            # Re-establish assumptions in order.
            all_assumed = True
            for a in assumptions:
                val = self._value(a)
                if val is True:
                    continue
                if val is False:
                    return UNSAT
                self.trail_lim.append(len(self.trail))
                self._enqueue(a, None)
                all_assumed = False
                break
            if not all_assumed:
                continue

            lit = self._decide()
            if lit is None:
                return SAT
            self.stats["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    def model(self) -> dict[int, bool]:
        """Assignment after a SAT answer (unassigned vars default False)."""
        out = {v: self.assign.get(v, False) for v in range(1, self.num_vars + 1)}
        return out
