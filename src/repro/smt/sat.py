"""A CDCL SAT solver with two-watched-literal propagation.

This is the bottom layer of the solver substrate that stands in for Z3.
Features: 1-UIP conflict-clause learning, VSIDS-style activity decay,
phase saving, Luby restarts, and solving under assumptions (which is
how the :class:`repro.smt.solver.Solver` facade implements incremental
push/pop).

Two operating modes share this class:

- **One-shot** (default): every ``add_clause`` and ``solve`` resets the
  trail to decision level 0 first.  Canonical cache-miss solves and the
  blast-cache replay stream depend on this mode being a pure function
  of the clause sequence.
- **Incremental** (``keep_trail_on_add = True``, used by the facade's
  incremental status plane): new clauses attach to the *live* trail,
  ``solve`` keeps the longest prefix of decision levels whose decisions
  are assumptions of the new call, and popped selector variables are
  retired (:meth:`retire_selector`) instead of asserted false — so the
  learned-clause database and most of the trail survive across the
  sibling feasibility checks of a DFS exploration tree.  The long-lived
  database gets the hygiene one-shot solves never needed: clauses
  guarded by retired selectors are garbage-collected, the learned set
  is reduced by activity with a size/LBD keep heuristic, and the lazy
  VSIDS heap is rebuilt when duplicate entries pile up.

Literal encoding: variables are positive integers ``1..n``; a literal
is ``+v`` or ``-v`` (DIMACS convention).
"""

from __future__ import annotations

import heapq

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 ...

    Positions inside a sub-sequence recurse via modulo, not plain
    subtraction — the subtractive variant underflowed for i=4, 5, 8,
    ... (``1 << -1``) as soon as a solve reached its fourth restart.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """CDCL solver over clauses of DIMACS-style integer literals."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        # watches[lit] -> clause indices watching lit (lit indexed by
        # its position in self._watch dict).
        self._watch: dict[int, list[int]] = {}
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, int | None] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.activity: dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        # Lazy max-heap of (-activity, var) for O(log n) decisions.
        self._order: list[tuple[float, int]] = []
        self.saved_phase: dict[int, bool] = {}
        self._qhead = 0
        self._ok = True
        # Incremental mode (see module docstring): clauses attach to
        # the live trail and solve() reuses the assumption-compatible
        # trail prefix instead of restarting from level 0.
        self.keep_trail_on_add = False
        # Selectors permanently disabled by the facade's pop(): never
        # decided again; clauses mentioning them are collected once
        # enough have accumulated since the last sweep.
        self._dead_sel: set[int] = set()
        self._dead_pending = 0
        self.gc_dead_threshold = 32
        # Learned-clause metadata for DB reduction: idx -> [activity,
        # lbd].  Metadata is kept in every mode (cheap); reduction only
        # triggers on long-lived incremental databases.
        self._learned: dict[int, list] = {}
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.max_learned = 2000
        # statistics
        self.stats = {
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "learned": 0,
            "restarts": 0,
            "solves": 0,
            "levels_reused": 0,
            "levels_assumed": 0,
            "selectors_retired": 0,
            "clauses_gced": 0,
            "learned_deleted": 0,
            "db_reductions": 0,
            "heap_rebuilds": 0,
        }

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self.activity[v] = 0.0
        heapq.heappush(self._order, (0.0, v))
        return v

    def _ensure_vars(self, clause) -> None:
        for lit in clause:
            v = abs(lit)
            while self.num_vars < v:
                self.new_var()

    def add_clause(self, clause: list[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        if self.trail_lim and not self.keep_trail_on_add:
            # A previous solve() may have left a partial assignment; new
            # clauses are always added at decision level 0.  Incremental
            # mode instead attaches to the live trail (_attach_live) so
            # the kept prefix survives sibling checks.
            self._backjump(0)
        self._ensure_vars(clause)
        # Deduplicate and detect tautology.
        seen: set[int] = set()
        out: list[int] = []
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return True  # tautology, clause is vacuous
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if self.trail_lim:
            return self._attach_live(out)
        return self._attach_at_root(out)

    def _watch_new(self, out: list[int]) -> int:
        idx = len(self.clauses)
        self.clauses.append(out)
        self._watch.setdefault(out[0], []).append(idx)
        self._watch.setdefault(out[1], []).append(idx)
        return idx

    def _attach_at_root(self, out: list[int]) -> bool:
        """Add a deduplicated clause with the trail at decision level 0."""
        # Drop literals already false at level 0; satisfied at level 0 -> skip.
        filtered = []
        for lit in out:
            val = self._value(lit)
            if val is True:
                return True
            if val is None:
                filtered.append(lit)
        out = filtered
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if self._value(out[0]) is False:
                self._ok = False
                return False
            if self._value(out[0]) is None:
                self._enqueue(out[0], None)
                if self._propagate() is not None:
                    self._ok = False
                    return False
            return True
        self._watch_new(out)
        return True

    def _attach_live(self, out: list[int]) -> bool:
        """Attach a clause without resetting the trail (incremental mode).

        The watch invariant requires both watched literals to be
        non-false at attach time (a watcher only wakes when its literal
        *becomes* false); when the live assignment leaves fewer than
        two, back off just far enough to release them instead of
        restarting the whole trail.
        """
        # Literals settled at level 0 are permanent: a true one
        # satisfies the clause forever, false ones can be dropped.
        filtered = []
        for lit in out:
            val = self._value(lit)
            if val is not None and self.level[abs(lit)] == 0:
                if val is True:
                    return True
                continue
            filtered.append(lit)
        out = filtered
        if not out:
            self._ok = False
            return False
        while True:
            if not self.trail_lim:
                return self._attach_at_root(out)
            if len(out) >= 2:
                nonfalse = [lit for lit in out
                            if self._value(lit) is not False]
                if len(nonfalse) >= 2:
                    first, second = nonfalse[0], nonfalse[1]
                    rest = [lit for lit in out
                            if lit != first and lit != second]
                    self._watch_new([first, second] + rest)
                    return True
                # Unit or conflicting under the live assignment: pop to
                # just below the highest falsifying level, which frees
                # at least one more literal, and re-evaluate.
                top = max(self.level[abs(lit)] for lit in out
                          if self._value(lit) is False)
                self._backjump(max(0, top - 1))
                continue
            # A genuine unit clause is a permanent fact; assert it at
            # the root (rare in this mode — Tseitin gate clauses always
            # carry a fresh output literal).
            self._backjump(0)

    # ------------------------------------------------------------------
    # Incremental-database hygiene
    # ------------------------------------------------------------------

    def retire_selector(self, v: int) -> None:
        """Permanently disable selector variable ``v`` (facade pop()).

        Unlike asserting the unit clause ``[-v]`` — which forces the
        trail back to level 0 — retirement unwinds only ``v``'s own
        decision level.  ``_decide`` never picks a dead selector again,
        so every clause guarded by ``v`` stays satisfiable via the
        untouched ``v = False`` phase; the clauses themselves are
        removed by the next :meth:`collect_garbage` sweep.  Sound for
        the status plane only because a retired selector is never
        assumed again.
        """
        if v in self.assign and self.level[v] > 0:
            self._backjump(self.level[v] - 1)
        self._dead_sel.add(v)
        self.saved_phase[v] = False
        self._dead_pending += 1
        self.stats["selectors_retired"] += 1

    def collect_garbage(self) -> int:
        """Drop every clause that mentions a retired selector.

        Equisatisfiable for all future queries: a dead selector is
        never assumed again, so each guarded clause is satisfiable by
        its selector's false phase, and learned clauses are always
        redundant.  Clauses currently locked as propagation reasons are
        skipped (they go on the next sweep).
        """
        dead = self._dead_sel
        self._dead_pending = 0
        if not dead:
            return 0
        locked = {rc for rc in self.reason.values() if rc is not None}
        drop = {idx for idx, clause in enumerate(self.clauses)
                if idx not in locked
                and any(abs(lit) in dead for lit in clause)}
        if drop:
            self._compact(drop)
            self.stats["clauses_gced"] += len(drop)
        return len(drop)

    def reduce_learned(self) -> int:
        """Activity-based learned-clause reduction.

        Keeps glue clauses (LBD <= 2), binary clauses, and clauses
        locked as reasons; of the rest, the cold half (lowest activity)
        is dropped.  The trigger threshold grows geometrically so the
        database still scales with genuinely hard instances.
        """
        learned = self._learned
        locked = {rc for rc in self.reason.values() if rc is not None}
        cands = [idx for idx, (_act, lbd) in learned.items()
                 if idx not in locked and lbd > 2
                 and len(self.clauses[idx]) > 2]
        if len(cands) < 2:
            return 0
        cands.sort(key=lambda idx: learned[idx][0])
        drop = set(cands[: len(cands) // 2])
        self._compact(drop)
        self.stats["db_reductions"] += 1
        self.stats["learned_deleted"] += len(drop)
        self.max_learned += self.max_learned // 2
        return len(drop)

    def _compact(self, drop: set[int]) -> None:
        """Remove ``drop`` clauses, remapping indices in watches,
        reasons and learned metadata.  Callers must not drop a clause
        that is some assigned variable's reason."""
        remap: dict[int, int] = {}
        clauses: list[list[int]] = []
        for idx, clause in enumerate(self.clauses):
            if idx in drop:
                continue
            remap[idx] = len(clauses)
            clauses.append(clause)
        self.clauses = clauses
        self._learned = {remap[idx]: meta
                         for idx, meta in self._learned.items()
                         if idx not in drop}
        for v, rc in self.reason.items():
            if rc is not None:
                self.reason[v] = remap[rc]
        watch: dict[int, list[int]] = {}
        for idx, clause in enumerate(clauses):
            watch.setdefault(clause[0], []).append(idx)
            watch.setdefault(clause[1], []).append(idx)
        self._watch = watch

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _value(self, lit: int):
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason_clause: int | None) -> None:
        v = abs(lit)
        self.assign[v] = lit > 0
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason_clause
        self.trail.append(lit)

    def _propagate(self) -> int | None:
        """Unit propagation; returns conflicting clause index or None."""
        while self._qhead < len(self.trail):
            lit = self.trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watchers = self._watch.get(false_lit)
            if not watchers:
                continue
            new_watchers: list[int] = []
            i = 0
            n = len(watchers)
            while i < n:
                ci = watchers[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watchers.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(ci)
                if self._value(first) is False:
                    # Conflict: restore remaining watchers.
                    new_watchers.extend(watchers[i:])
                    self._watch[false_lit] = new_watchers
                    self._qhead = len(self.trail)
                    return ci
                self.stats["propagations"] += 1
                self._enqueue(first, ci)
            self._watch[false_lit] = new_watchers
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _heap_push(self, v: int) -> None:
        heapq.heappush(self._order, (-self.activity.get(v, 0.0), v))
        # Duplicate entries accumulate — every bump and every unassign
        # push a fresh one.  Fine for one-shot solves, a leak for a
        # long-lived incremental database: rebuild once the heap
        # clearly outgrows the variable count.  Stale entries only ever
        # carry outdated (lower) priorities, so dropping them never
        # changes which variable _decide picks next.
        if len(self._order) > 2 * self.num_vars + 64:
            self._rebuild_order()

    def _rebuild_order(self) -> None:
        dead = self._dead_sel
        self._order = [(-self.activity.get(v, 0.0), v)
                       for v in range(1, self.num_vars + 1)
                       if v not in self.assign and v not in dead]
        heapq.heapify(self._order)
        self.stats["heap_rebuilds"] += 1

    def _bump(self, v: int) -> None:
        self.activity[v] = self.activity.get(v, 0.0) + self.var_inc
        if self.activity[v] > 1e100:
            for key in self.activity:
                self.activity[key] *= 1e-100
            self.var_inc *= 1e-100
            self._rebuild_order()
            return
        self._heap_push(v)

    def _bump_clause(self, idx: int) -> None:
        meta = self._learned.get(idx)
        if meta is None:
            return
        meta[0] += self.cla_inc
        if meta[0] > 1e20:
            for other in self._learned.values():
                other[0] *= 1e-20
            self.cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """1-UIP learning; returns (learned clause, backjump level)."""
        cur_level = len(self.trail_lim)
        learned: list[int] = [0]  # placeholder for asserting literal
        seen: set[int] = set()
        counter = 0
        p: int | None = None
        clause = self.clauses[conflict]
        self._bump_clause(conflict)
        idx = len(self.trail) - 1
        while True:
            for lit in clause:
                if p is not None and lit == p:
                    continue
                v = abs(lit)
                if v in seen or self.level.get(v, 0) == 0:
                    continue
                seen.add(v)
                self._bump(v)
                if self.level[v] == cur_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find next literal on trail to resolve on.
            while abs(self.trail[idx]) not in seen:
                idx -= 1
            p = self.trail[idx]
            idx -= 1
            v = abs(p)
            seen.discard(v)
            counter -= 1
            if counter == 0:
                learned[0] = -p
                break
            rc = self.reason[v]
            assert rc is not None, "reached a decision before the 1-UIP"
            clause = self.clauses[rc]
            self._bump_clause(rc)
        # Compute backjump level = max level of the other literals.
        if len(learned) == 1:
            bj = 0
        else:
            bj = max(self.level[abs(lit)] for lit in learned[1:])
        return learned, bj

    def _backjump(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            lim = self.trail_lim.pop()
            while len(self.trail) > lim:
                lit = self.trail.pop()
                v = abs(lit)
                self.saved_phase[v] = self.assign[v]
                del self.assign[v]
                del self.level[v]
                del self.reason[v]
                self._heap_push(v)
            self._qhead = min(self._qhead, len(self.trail))
        self._qhead = min(self._qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Decision heuristics
    # ------------------------------------------------------------------

    def _decide(self) -> int | None:
        # Duplicate heap entries are pruned wholesale by _heap_push's
        # periodic rebuild; individual stale entries that surface here
        # are skipped like assigned variables.
        dead = self._dead_sel
        while self._order:
            _neg_act, v = heapq.heappop(self._order)
            if v not in self.assign and v not in dead:
                phase = self.saved_phase.get(v, False)
                return v if phase else -v
        # Heap exhausted: fall back to a linear scan (rare).
        for v in range(1, self.num_vars + 1):
            if v not in self.assign and v not in dead:
                phase = self.saved_phase.get(v, False)
                return v if phase else -v
        return None

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def _assumption_floor(self, aset: set[int]) -> int:
        """Longest prefix of decision levels whose decisions are all in
        ``aset`` — the deepest level a restart/reuse may keep while the
        UNSAT-by-falsified-assumption shortcut stays sound."""
        keep = 0
        for lim in self.trail_lim:
            if self.trail[lim] in aset:
                keep += 1
            else:
                break
        return keep

    def solve(self, assumptions: list[int] | None = None,
              conflict_budget: int | None = None,
              reuse_trail: bool = False) -> str:
        """Solve under the given assumptions; returns ``SAT`` or ``UNSAT``.

        With ``conflict_budget`` the search stops after that many
        conflicts and returns ``UNKNOWN``, leaving the solver at
        decision level 0 with everything it learned retained — calling
        ``solve`` again (with or without a budget) resumes where the
        previous slice left off.  This is how the portfolio layer
        classifies hard queries and interleaves native search with
        external back-end polling (see :mod:`repro.smt.backends`).

        With ``reuse_trail`` the call keeps the longest prefix of
        decision levels whose decisions are assumptions of *this* call
        instead of restarting at level 0, and restarts back off only to
        that assumption floor.  Consecutive solves over assumption sets
        sharing a prefix (sibling feasibility checks in a DFS tree)
        then re-propagate only the suffix.  Status answers are
        unaffected; models may legally differ from a cold solve, which
        is why only the status-only query plane uses it.
        """
        if not self._ok:
            return UNSAT
        assumptions = list(assumptions or [])
        self.stats["solves"] += 1
        if self._dead_pending >= self.gc_dead_threshold:
            self.collect_garbage()
        if self.keep_trail_on_add and len(self._learned) > self.max_learned:
            self.reduce_learned()
        aset = set(assumptions)
        if reuse_trail and self.trail_lim:
            keep = self._assumption_floor(aset)
            self._backjump(keep)
            self.stats["levels_reused"] += keep
        else:
            self._backjump(0)
        if reuse_trail:
            self.stats["levels_assumed"] += len(assumptions)
        conflict = self._propagate()
        if conflict is not None:
            if not self.trail_lim:
                self._ok = False
                return UNSAT
            # A kept prefix propagated into a conflict (possible only
            # when clauses were attached mid-trail).  Make sure the
            # conflict involves the top decision level so 1-UIP
            # analysis is well-defined, then let the main loop have it.
            top = max((self.level[abs(lit)]
                       for lit in self.clauses[conflict]), default=0)
            if top < len(self.trail_lim):
                self._backjump(top)
            if not self.trail_lim:
                self._ok = False
                return UNSAT

        restart_count = 1
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_this_restart = 0
        conflicts_this_call = 0

        while True:
            if conflict is None:
                conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_this_restart += 1
                conflicts_this_call += 1
                if not self.trail_lim:
                    return UNSAT
                # If the conflict is below the assumption levels we
                # cannot recover by learning alone when it involves only
                # assumptions; the analyze/backjump loop handles it by
                # backjumping into assumption territory and re-deciding.
                learned, bj = self._analyze(conflict)
                conflict = None
                lbd = len({self.level[abs(lit)] for lit in learned[1:]}) + 1
                self._backjump(bj)
                if len(learned) == 1:
                    if self._value(learned[0]) is False:
                        return UNSAT
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    idx = self._watch_new(learned)
                    self._learned[idx] = [self.cla_inc, lbd]
                    self.stats["learned"] += 1
                    self._enqueue(learned[0], idx)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if (conflict_budget is not None
                        and conflicts_this_call >= conflict_budget):
                    # Progress survives the pause through the clause
                    # database (learned clauses and level-0 units stay);
                    # park the search at level 0 and hand control back.
                    self._backjump(0)
                    return UNKNOWN
                continue

            if conflicts_this_restart >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_count += 1
                conflicts_until_restart = 32 * _luby(restart_count)
                conflicts_this_restart = 0
                # Restarting below the assumption floor would only
                # re-propagate the same assumptions; in reuse mode keep
                # them (one-shot callers keep the historical full reset).
                self._backjump(self._assumption_floor(aset)
                               if reuse_trail else 0)
                continue

            # Re-establish assumptions in order.
            all_assumed = True
            for a in assumptions:
                val = self._value(a)
                if val is True:
                    continue
                if val is False:
                    return UNSAT
                self.trail_lim.append(len(self.trail))
                self._enqueue(a, None)
                all_assumed = False
                break
            if not all_assumed:
                continue

            lit = self._decide()
            if lit is None:
                return SAT
            self.stats["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    def model(self) -> dict[int, bool]:
        """Assignment after a SAT answer (unassigned vars default False)."""
        out = {v: self.assign.get(v, False) for v in range(1, self.num_vars + 1)}
        return out
