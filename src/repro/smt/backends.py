"""Pluggable solver back ends and the portfolio racer.

The SAT core is where the oracle spends most of its wall time (the
Fig. 7 CPU split), so "which solver answers a query" is a first-class,
user-extensible choice here — mirroring the easyila ``OracleInterface``
pattern where an oracle is either a Python callable or an external
binary behind a subprocess boundary, selected through one registry.

Three layers:

- :class:`SolverBackend` — the ABC.  A back end answers one
  self-contained :class:`SolveRequest` (a CNF snapshot, plus the
  originating word-level terms for SMT-level back ends).  Built-ins:

  * :class:`NativeBackend` — the in-process CDCL solver
    (:mod:`repro.smt.sat`); always available, always the fallback.
  * :class:`DimacsBackend` — a generic subprocess back end speaking
    DIMACS CNF, preconfigured for ``kissat``/``cadical``/``minisat``
    binaries discovered on ``PATH`` (or any command via the
    ``REPRO_SOLVER_PATH`` environment variable).
  * :class:`SmtLib2Backend` — an SMT-LIB2 subprocess back end (``z3``).

- :func:`register_solver` — the plugin registry (a
  :class:`repro.registry.Registry`), so external solvers plug in the
  same way test back ends and simulators do.

- :class:`PortfolioSolver` — races the native solver against external
  back ends on *hard* queries (classified by a conflict budget) with
  per-backend timeout/kill/backoff.  Winner selection is deterministic
  in its *effect*: SAT/UNSAT status is objective, so any sound winner
  yields the same verdict, ties are broken by fixed priority order, and
  models that reach test output always come from the configured primary
  back end — which is why portfolio on/off suites are byte-identical.

Missing binaries degrade gracefully: the back end reports itself
unavailable, the portfolio logs once and falls back to native, and the
run never fails.

:class:`CrossChecker` is the fourth validation layer (beside the fuzz
harness): it re-solves a deterministic sample of SAT answers on a
second back end and verifies the emitted model against the original
constraint set at the word level.
"""

from __future__ import annotations

import logging
import os
import shlex
import shutil
import subprocess
import sys
import tempfile
import time
from abc import ABC, abstractmethod

from ..registry import Registry
from .evaluate import all_hold
from .sat import SAT, UNKNOWN, UNSAT, SatSolver

__all__ = [
    "SolveRequest", "BackendAnswer", "SolverBackend", "NativeBackend",
    "DimacsBackend", "SmtLib2Backend", "PortfolioSolver", "CrossChecker",
    "CrossCheckError", "SOLVERS", "register_solver", "solver_names",
    "make_solver", "available_solver_names", "request_from_sat",
    "build_portfolio",
]

log = logging.getLogger("repro.smt.backends")

#: Environment variable naming a DIMACS solver command for the generic
#: ``dimacs`` back end; split with shlex, so
#: ``REPRO_SOLVER_PATH="python3 /path/to/solver.py"`` works.
SOLVER_PATH_ENV = "REPRO_SOLVER_PATH"


class SolveRequest:
    """One self-contained query: a CNF snapshot plus optional terms.

    ``clauses`` may include learned clauses (they are implied, so the
    snapshot is equisatisfiable with the original formula under the
    same assumptions); ``assumptions`` are literals that a CNF back end
    appends as unit clauses.  ``terms`` carries the word-level boolean
    conjuncts for SMT-level back ends; CNF-only requests leave it None.
    """

    __slots__ = ("num_vars", "clauses", "assumptions", "terms")

    def __init__(self, num_vars: int, clauses, assumptions=(), terms=None):
        self.num_vars = num_vars
        self.clauses = clauses
        self.assumptions = tuple(assumptions)
        self.terms = terms

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} "
                 f"{len(self.clauses) + len(self.assumptions)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        for lit in self.assumptions:
            lines.append(f"{lit} 0")
        return "\n".join(lines) + "\n"

    def verify_assignment(self, assignment: dict[int, bool]) -> bool:
        """True iff ``assignment`` satisfies every clause + assumption
        (unassigned variables read as False)."""
        def lit_true(lit: int) -> bool:
            value = assignment.get(abs(lit), False)
            return value if lit > 0 else not value

        if not all(lit_true(lit) for lit in self.assumptions):
            return False
        return all(any(lit_true(lit) for lit in clause)
                   for clause in self.clauses)


def request_from_sat(sat: SatSolver, assumptions=(), terms=None) -> SolveRequest:
    """Snapshot a live :class:`SatSolver`'s clause database.

    Clauses are copied (watch-literal maintenance permutes them in
    place) so the request stays stable while the native search keeps
    running during a race.  Level-0 facts live on the solver's *trail*,
    not in the clause list (units are enqueued directly and satisfied
    clauses dropped at add time), so the decision-level-0 prefix of the
    trail is appended as unit clauses — without it the snapshot would be
    weaker than the real formula and external SAT verdicts unsound.
    """
    level0 = sat.trail_lim[0] if sat.trail_lim else len(sat.trail)
    clauses = [tuple(c) for c in sat.clauses]
    clauses.extend((lit,) for lit in sat.trail[:level0])
    return SolveRequest(
        num_vars=sat.num_vars,
        clauses=clauses,
        assumptions=assumptions,
        terms=terms,
    )


class BackendAnswer:
    """status is "sat"/"unsat" (decisive), or "unknown"/"timeout"/
    "error" (the portfolio keeps going)."""

    __slots__ = ("status", "assignment", "backend", "time_s", "detail")

    def __init__(self, status: str, assignment=None, backend: str = "?",
                 time_s: float = 0.0, detail: str = ""):
        self.status = status
        self.assignment = assignment
        self.backend = backend
        self.time_s = time_s
        self.detail = detail

    @property
    def decisive(self) -> bool:
        return self.status in (SAT, UNSAT)

    def __repr__(self) -> str:
        return f"BackendAnswer({self.status!r}, backend={self.backend!r})"


class SolverBackend(ABC):
    """A named solver that can answer :class:`SolveRequest`\\ s.

    Synchronous use goes through :meth:`solve`.  Back ends that can run
    concurrently with the native search (subprocess back ends)
    additionally implement the ``start``/``poll``/``kill`` protocol;
    the default implementations mark the back end non-startable, in
    which case the portfolio only ever calls :meth:`solve`.
    """

    #: registry name; instances may override (e.g. per-binary).
    name = "backend"

    def available(self) -> bool:
        """Whether the back end can answer queries right now (e.g. its
        binary exists).  Unavailable back ends are skipped with one log
        line — never an error."""
        return True

    @abstractmethod
    def solve(self, request: SolveRequest,
              timeout: float | None = None) -> BackendAnswer:
        """Answer ``request``, blocking for at most ``timeout`` seconds."""

    # -- async racing protocol (optional) ------------------------------

    def start(self, request: SolveRequest, timeout: float | None = None):
        """Begin solving asynchronously; returns an opaque handle or
        None if this back end cannot run asynchronously."""
        return None

    def poll(self, handle) -> BackendAnswer | None:
        """None while still running; a :class:`BackendAnswer` once done
        (including on timeout — poll is responsible for the kill)."""
        raise NotImplementedError

    def kill(self, handle) -> None:
        """Abort an in-flight query and release its resources."""

    def close(self) -> None:
        """Release any long-lived resources."""


class NativeBackend(SolverBackend):
    """The in-process CDCL solver, wrapped as a back end.

    Used directly by :class:`PortfolioSolver` for one-shot re-solves
    (cross-checking) — the portfolio's *incremental* native search runs
    on the caller's live solver instead, so learned clauses persist.
    """

    name = "native"

    def solve(self, request: SolveRequest,
              timeout: float | None = None) -> BackendAnswer:
        t0 = time.perf_counter()
        sat = SatSolver()
        for clause in request.clauses:
            sat.add_clause(list(clause))
        status = sat.solve(list(request.assumptions))
        assignment = sat.model() if status == SAT else None
        return BackendAnswer(status, assignment, self.name,
                             time.perf_counter() - t0)


class _ProcHandle:
    __slots__ = ("proc", "path", "deadline", "t0")

    def __init__(self, proc, path, deadline, t0):
        self.proc = proc
        self.path = path
        self.deadline = deadline
        self.t0 = t0


class _SubprocessBackend(SolverBackend):
    """Common subprocess plumbing: temp input file, argv + [file],
    deadline-based kill, stdout parsing via :meth:`_parse`."""

    #: seconds, used when the caller does not pass a timeout.
    default_timeout = 10.0
    suffix = ".cnf"

    def __init__(self, argv, name=None, timeout: float | None = None):
        self.argv = list(argv)
        if name is not None:
            self.name = name
        if timeout is not None:
            self.default_timeout = timeout

    def available(self) -> bool:
        if not self.argv:
            return False
        head = self.argv[0]
        return bool(shutil.which(head) or os.path.exists(head))

    def _render(self, request: SolveRequest) -> str | None:
        raise NotImplementedError

    def _parse(self, stdout: str, returncode: int) -> BackendAnswer:
        raise NotImplementedError

    def start(self, request: SolveRequest, timeout: float | None = None):
        text = self._render(request)
        if text is None:
            return None
        fd, path = tempfile.mkstemp(suffix=self.suffix, prefix="repro-q-")
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        t0 = time.perf_counter()
        try:
            proc = subprocess.Popen(
                self.argv + [path],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
        except OSError as exc:
            os.unlink(path)
            raise RuntimeError(f"failed to launch {self.name}: {exc}") from exc
        budget = timeout if timeout is not None else self.default_timeout
        return _ProcHandle(proc, path, t0 + budget, t0)

    def poll(self, handle: _ProcHandle) -> BackendAnswer | None:
        rc = handle.proc.poll()
        now = time.perf_counter()
        if rc is None:
            if now < handle.deadline:
                return None
            self.kill(handle)
            return BackendAnswer("timeout", None, self.name,
                                 now - handle.t0, "deadline exceeded")
        stdout = handle.proc.stdout.read() if handle.proc.stdout else ""
        self._cleanup(handle)
        answer = self._parse(stdout, rc)
        answer.time_s = now - handle.t0
        return answer

    def kill(self, handle: _ProcHandle) -> None:
        if handle.proc.poll() is None:
            handle.proc.kill()
            try:
                handle.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        self._cleanup(handle)

    def _cleanup(self, handle: _ProcHandle) -> None:
        if handle.proc.stdout:
            handle.proc.stdout.close()
        try:
            os.unlink(handle.path)
        except OSError:
            pass

    def solve(self, request: SolveRequest,
              timeout: float | None = None) -> BackendAnswer:
        try:
            handle = self.start(request, timeout)
        except RuntimeError as exc:
            return BackendAnswer("error", None, self.name, 0.0, str(exc))
        if handle is None:
            return BackendAnswer("unknown", None, self.name, 0.0,
                                 "request not expressible for this backend")
        while True:
            answer = self.poll(handle)
            if answer is not None:
                return answer
            time.sleep(0.005)


class DimacsBackend(_SubprocessBackend):
    """Generic DIMACS CNF subprocess back end (kissat/cadical/minisat
    style): input file as last argv element, answer on stdout as
    ``s SATISFIABLE``/``s UNSATISFIABLE`` plus ``v`` model lines (bare
    ``SATISFIABLE`` and exit codes 10/20 are also understood)."""

    name = "dimacs"
    suffix = ".cnf"

    def _render(self, request: SolveRequest) -> str:
        return request.to_dimacs()

    def _parse(self, stdout: str, returncode: int) -> BackendAnswer:
        status = None
        assignment: dict[int, bool] = {}
        for line in stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("s "):
                word = line[2:].strip().upper()
            elif line.split()[0].upper() in ("SATISFIABLE", "UNSATISFIABLE",
                                             "SAT", "UNSAT"):
                word = line.split()[0].upper()
            elif line.startswith("v "):
                for tok in line[2:].split():
                    lit = int(tok)
                    if lit:
                        assignment[abs(lit)] = lit > 0
                continue
            else:
                continue
            if word in ("SATISFIABLE", "SAT"):
                status = SAT
            elif word in ("UNSATISFIABLE", "UNSAT"):
                status = UNSAT
        if status is None:
            if returncode == 10:
                status = SAT
            elif returncode == 20:
                status = UNSAT
            else:
                return BackendAnswer("error", None, self.name, 0.0,
                                     f"unparseable output (rc={returncode})")
        return BackendAnswer(status, assignment if status == SAT else None,
                             self.name)


class SmtLib2Backend(_SubprocessBackend):
    """SMT-LIB2 subprocess back end (``z3 file.smt2`` style).

    Solves at the word level from ``request.terms``; requests carrying
    only CNF are declined (the portfolio just skips this back end for
    them).  Status-only: SAT answers come back without an assignment,
    so the portfolio uses them for verdicts, never for models.
    """

    name = "z3"
    suffix = ".smt2"

    def _render(self, request: SolveRequest) -> str | None:
        if not request.terms:
            return None
        from .smtlib import to_smtlib2

        return to_smtlib2(request.terms)

    def _parse(self, stdout: str, returncode: int) -> BackendAnswer:
        for line in stdout.splitlines():
            word = line.strip()
            if word == "sat":
                return BackendAnswer(SAT, None, self.name)
            if word == "unsat":
                return BackendAnswer(UNSAT, None, self.name)
            if word == "unknown":
                return BackendAnswer("unknown", None, self.name)
        return BackendAnswer("error", None, self.name, 0.0,
                             f"unparseable output (rc={returncode})")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _validate_solver_factory(name: str, factory) -> None:
    if not callable(factory):
        raise TypeError(
            f"solver backend factory for {name!r} must be callable "
            f"(returning a SolverBackend), got {type(factory).__name__}")


#: name -> zero-argument factory returning a :class:`SolverBackend`.
SOLVERS = Registry("solver backend", validator=_validate_solver_factory)


def register_solver(name: str, factory, *, replace: bool = False) -> None:
    """Register an external solver back end under ``name``.

    ``factory`` is called with no arguments and must return a
    :class:`SolverBackend`.  After registration the name is accepted by
    ``TestGenConfig.solver``/``.portfolio``, the CLI ``--solver`` /
    ``--portfolio`` flags, and :func:`make_solver`.
    """
    SOLVERS.register(name, factory, replace=replace)


def make_solver(name: str) -> SolverBackend:
    """Instantiate the back end registered under ``name``."""
    backend = SOLVERS.create(name)
    if not isinstance(backend, SolverBackend):
        raise TypeError(f"solver backend factory {name!r} returned "
                        f"{type(backend).__name__}, not a SolverBackend")
    return backend


def solver_names() -> list[str]:
    return SOLVERS.names()


def available_solver_names() -> list[str]:
    """Registered back ends whose binaries are actually present."""
    out = []
    for name in SOLVERS.names():
        try:
            if make_solver(name).available():
                out.append(name)
        except Exception:  # a broken factory must not break listing
            continue
    return out


def _env_dimacs_factory() -> DimacsBackend:
    command = os.environ.get(SOLVER_PATH_ENV, "")
    return DimacsBackend(shlex.split(command), name="dimacs")


register_solver("native", NativeBackend)
register_solver("dimacs", _env_dimacs_factory)
register_solver("kissat", lambda: DimacsBackend(["kissat", "-q"],
                                                name="kissat"))
register_solver("cadical", lambda: DimacsBackend(["cadical", "-q"],
                                                 name="cadical"))
register_solver("minisat", lambda: DimacsBackend(["minisat", "-verb=0"],
                                                 name="minisat"))
register_solver("z3", lambda: SmtLib2Backend(["z3", "-smt2"], name="z3"))


# ---------------------------------------------------------------------------
# Portfolio
# ---------------------------------------------------------------------------

_warned_unavailable: set[str] = set()


def _warn_once(name: str, message: str) -> None:
    if name not in _warned_unavailable:
        _warned_unavailable.add(name)
        log.warning("%s", message)


def _bump(stats, field: str, name: str, n: int = 1) -> None:
    if stats is None:
        return
    counters = getattr(stats, field)
    counters[name] = counters.get(name, 0) + n


class PortfolioSolver:
    """Races solver back ends on hard queries; degrades to pure native.

    Determinism contract: every *verdict* (SAT/UNSAT) is objective, so
    it cannot depend on which back end answered first; every *model*
    that callers may consume comes from the primary back end (native by
    default), with external assignments verified against the clause
    snapshot before they are ever trusted.  Which backend wins a race
    therefore changes timing and stats, never results — suites are
    byte-identical portfolio on/off.

    Args:
        primary: back-end name answering model-bearing queries
            ("native" unless the user brings their own solver).
        externals: back-end names raced against the native search on
            hard queries.
        conflict_budget: native conflicts before a query counts as hard
            and the race starts.
        timeout_s: per-backend wall budget for one query.
        max_failures: errors/timeouts before a back end is benched for
            the rest of the run (logged once).
    """

    def __init__(self, primary: str = "native", externals=(),
                 conflict_budget: int = 256, timeout_s: float = 10.0,
                 max_failures: int = 3):
        self.conflict_budget = max(1, int(conflict_budget))
        self.timeout_s = timeout_s
        self.max_failures = max_failures
        self.primary_name = primary
        self._primary_external: SolverBackend | None = None
        self._failures: dict[str, int] = {}
        if primary != "native":
            backend = self._instantiate(primary)
            if backend is not None:
                self._primary_external = backend
            else:
                self.primary_name = "native"
        # Fixed priority order = registration order in the config; this
        # is the deterministic tie-break when several finish in the
        # same poll round.
        self.externals: list[SolverBackend] = []
        for name in externals:
            if name == "native" or name == self.primary_name:
                continue
            backend = self._instantiate(name)
            if backend is not None:
                self.externals.append(backend)

    def _instantiate(self, name: str) -> SolverBackend | None:
        try:
            backend = make_solver(name)
        except Exception as exc:
            _warn_once(name, f"solver backend {name!r} failed to load "
                             f"({exc}); falling back to native")
            return None
        if not backend.available():
            _warn_once(name, f"solver backend {name!r} is not available "
                             f"(binary not found); falling back to native")
            return None
        return backend

    @property
    def active(self) -> bool:
        """Whether any non-native back end is actually in play."""
        return bool(self.externals) or self._primary_external is not None

    def first_external(self) -> SolverBackend | None:
        return self.externals[0] if self.externals else None

    def _live_externals(self) -> list[SolverBackend]:
        return [b for b in self.externals
                if self._failures.get(b.name, 0) < self.max_failures]

    def _record_failure(self, backend: SolverBackend, reason: str,
                        stats) -> None:
        field = ("backend_timeouts" if reason == "timeout"
                 else "backend_errors")
        _bump(stats, field, backend.name)
        count = self._failures.get(backend.name, 0) + 1
        self._failures[backend.name] = count
        if count == self.max_failures:
            _warn_once(backend.name + ":benched",
                       f"solver backend {backend.name!r} benched after "
                       f"{count} failures; continuing with native")

    # ------------------------------------------------------------------

    def solve_with(self, sat: SatSolver, assumptions, *,
                   need_model: bool = False, terms=None, stats=None):
        """Answer the live solver's current query, racing if it is hard.

        Returns ``(status, external_assignment_or_None, backend_name)``.
        ``external_assignment`` is set only when an external back end
        won a SAT verdict with a clause-verified assignment; callers
        may surface it as a model.  With ``need_model`` a SAT verdict
        must carry the primary back end's model, so external SAT wins
        only short-circuit when the winner *is* the primary.
        """
        assumptions = list(assumptions)
        if self._primary_external is not None:
            return self._solve_external_primary(
                sat, assumptions, need_model=need_model, terms=terms,
                stats=stats)
        externals = self._live_externals()
        if not externals:
            return sat.solve(assumptions), None, "native"
        # Classify: cheap queries never pay subprocess startup.
        _bump(stats, "backend_queries", "native")
        status = sat.solve(assumptions, conflict_budget=self.conflict_budget)
        if status != UNKNOWN:
            _bump(stats, "backend_wins", "native")
            return status, None, "native"
        return self._race(sat, assumptions, externals,
                          need_model=need_model, terms=terms, stats=stats)

    def _race(self, sat: SatSolver, assumptions, externals, *,
              need_model: bool, terms, stats):
        if stats is not None:
            stats.portfolio_races += 1
        request = request_from_sat(sat, assumptions, terms=terms)
        handles: list[tuple[SolverBackend, object]] = []
        for backend in externals:
            _bump(stats, "backend_queries", backend.name)
            try:
                handle = backend.start(request, self.timeout_s)
            except Exception as exc:
                self._record_failure(backend, "error", stats)
                log.debug("backend %s failed to start: %s", backend.name, exc)
                continue
            if handle is not None:
                handles.append((backend, handle))

        def kill_all():
            for backend, handle in handles:
                try:
                    backend.kill(handle)
                except Exception:
                    pass

        try:
            while True:
                # One native slice...
                status = sat.solve(assumptions,
                                   conflict_budget=self.conflict_budget)
                if status != UNKNOWN:
                    _bump(stats, "backend_wins", "native")
                    return status, None, "native"
                # ...then poll the subprocesses, in fixed priority order.
                finished: list[tuple[SolverBackend, BackendAnswer]] = []
                still: list[tuple[SolverBackend, object]] = []
                for backend, handle in handles:
                    try:
                        answer = backend.poll(handle)
                    except Exception as exc:
                        answer = BackendAnswer("error", None, backend.name,
                                               0.0, str(exc))
                    if answer is None:
                        still.append((backend, handle))
                    else:
                        finished.append((backend, answer))
                handles = still
                for backend, answer in finished:
                    if not answer.decisive:
                        self._record_failure(
                            backend,
                            "timeout" if answer.status == "timeout"
                            else "error",
                            stats)
                        continue
                    if answer.status == SAT and answer.assignment is not None:
                        if not request.verify_assignment(answer.assignment):
                            self._record_failure(backend, "error", stats)
                            log.debug("backend %s returned a bogus model",
                                      backend.name)
                            continue
                    if answer.status == SAT and need_model:
                        # A model-bearing query: the verdict is known,
                        # but the emitted model must come from the
                        # primary (native) back end for run-to-run
                        # byte-identity — finish the native solve.
                        _bump(stats, "backend_wins", backend.name)
                        kill_all()
                        handles = []
                        final = sat.solve(assumptions)
                        return final, None, "native"
                    _bump(stats, "backend_wins", backend.name)
                    kill_all()
                    handles = []
                    return (answer.status, answer.assignment, answer.backend)
                if not handles:
                    # Every external died; finish natively.
                    status = sat.solve(assumptions)
                    _bump(stats, "backend_wins", "native")
                    return status, None, "native"
        finally:
            kill_all()

    def _solve_external_primary(self, sat: SatSolver, assumptions, *,
                                need_model: bool, terms, stats):
        """User-selected external primary: every query goes to it; the
        native solver is the always-available fallback."""
        backend = self._primary_external
        if self._failures.get(backend.name, 0) >= self.max_failures:
            return sat.solve(assumptions), None, "native"
        request = request_from_sat(sat, assumptions, terms=terms)
        _bump(stats, "backend_queries", backend.name)
        try:
            answer = backend.solve(request, self.timeout_s)
        except Exception as exc:
            answer = BackendAnswer("error", None, backend.name, 0.0, str(exc))
        if answer.status == UNSAT:
            _bump(stats, "backend_wins", backend.name)
            return UNSAT, None, backend.name
        if answer.status == SAT:
            assignment = answer.assignment
            if assignment is not None and request.verify_assignment(assignment):
                _bump(stats, "backend_wins", backend.name)
                return SAT, assignment, backend.name
            if not need_model:
                _bump(stats, "backend_wins", backend.name)
                return SAT, None, backend.name
            # SAT without a trustworthy model: fall through to native.
            log.debug("primary backend %s answered sat without a usable "
                      "model; extracting natively", backend.name)
        else:
            self._record_failure(
                backend,
                "timeout" if answer.status == "timeout" else "error",
                stats)
        status = sat.solve(assumptions)
        _bump(stats, "backend_wins", "native")
        return status, None, "native"

    def close(self) -> None:
        for backend in self.externals:
            try:
                backend.close()
            except Exception:
                pass
        if self._primary_external is not None:
            try:
                self._primary_external.close()
            except Exception:
                pass


def build_portfolio(config) -> PortfolioSolver | None:
    """Construct the portfolio a :class:`TestGenConfig` asks for.

    Returns None for the default native-only configuration, so the hot
    path keeps its zero-indirection dispatch (the perfsmoke guard pins
    this).
    """
    solver = getattr(config, "solver", "native")
    portfolio = tuple(getattr(config, "portfolio", ()) or ())
    if solver == "native" and not portfolio:
        return None
    if solver != "native" and solver not in SOLVERS:
        SOLVERS.get(solver)  # raises UnknownNameError with suggestions
    for name in portfolio:
        if name not in SOLVERS and name != "native":
            SOLVERS.get(name)
    return PortfolioSolver(
        primary=solver,
        externals=portfolio,
        conflict_budget=getattr(config, "portfolio_budget", 256),
    )


# ---------------------------------------------------------------------------
# Cross-checking
# ---------------------------------------------------------------------------

class CrossCheckError(AssertionError):
    """A second back end disagreed with a recorded answer, or an
    emitted model failed verification — one of the solver layers is
    wrong, exactly what the validation layer exists to catch."""


class CrossChecker:
    """Differential validation of SAT answers (``--solver-crosscheck``).

    Every ``sample``-th SAT answer is (a) verified at the word level —
    the emitted model must satisfy the original constraint set — and
    (b) re-solved on ``secondary`` (when one is configured and
    available), whose verdict must agree.  The sampling counter is
    deterministic, so which answers get checked is reproducible.
    """

    def __init__(self, secondary: SolverBackend | None = None,
                 sample: int = 4, strict: bool = True,
                 timeout_s: float = 10.0):
        self.secondary = secondary
        self.sample = max(1, int(sample))
        self.strict = strict
        self.timeout_s = timeout_s
        self.checks = 0
        self.failures = 0
        self.disagreements: list[str] = []
        self._seen_sat = 0

    def maybe_check(self, terms, model: dict, request: SolveRequest | None,
                    context: str = "") -> None:
        """Cross-check one SAT answer if the sampler selects it."""
        self._seen_sat += 1
        if self._seen_sat % self.sample:
            return
        self.checks += 1
        failure = None
        try:
            if not all_hold(list(terms), model):
                failure = f"model fails word-level verification ({context})"
        except Exception as exc:
            failure = f"model verification raised {exc!r} ({context})"
        if failure is None and self.secondary is not None \
                and self.secondary.available() and request is not None:
            try:
                answer = self.secondary.solve(request, self.timeout_s)
            except Exception as exc:
                answer = BackendAnswer("error", None, self.secondary.name,
                                       0.0, str(exc))
            if answer.status == UNSAT:
                failure = (f"backend {answer.backend!r} says unsat where "
                           f"the recorded answer was sat ({context})")
            # unknown/timeout/error: no verdict, nothing to compare.
        if failure is not None:
            self.failures += 1
            self.disagreements.append(failure)
            if self.strict:
                raise CrossCheckError(failure)
            log.error("solver crosscheck failed: %s", failure)
