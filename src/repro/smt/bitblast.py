"""Bit-blasting of bitvector terms to CNF.

Each bitvector term maps to a list of SAT literals, least significant
bit first; each boolean term maps to a single literal.  Results are
cached per term (terms are hash-consed), so shared subterms are blasted
exactly once — this is what makes the incremental solver facade cheap.

:class:`SharedBlastCache` extends that within-solver sharing to
*across* solver instances in one worker process.  Canonical cache-miss
solves (:meth:`repro.smt.cache.SolveCache.solve`) each spin up a fresh
solver and re-blast constraint sets that heavily overlap with previous
misses; the shared cache memoizes, per asserted root term, the **exact
sequence of SAT-solver operations** (``new_var``/``add_clause`` calls,
in order) plus the blaster/gate cache entries the blast produced.  A
later solver asserting the same root — after the same prefix of roots —
replays that recording verbatim instead of re-walking the term DAG.

Why a trie keyed by the assertion prefix, and why verbatim replay?
CDCL answers (and therefore models, and therefore emitted tests)
depend on variable numbering, clause order, and the level-0
normalization ``add_clause`` applies against the current assignment.
Replaying the recorded op sequence from an identical solver state
reproduces an *identical* solver state — so a warm hit is bit-for-bit
indistinguishable from cold blasting, and byte-identical suites are
preserved by construction.  The trie's path (the sequence of roots
asserted so far) is exactly the "identical prior state" precondition.
"""

from __future__ import annotations

import time
from itertools import islice

from .cnf import CnfBuilder
from .terms import Term

__all__ = ["BitBlaster", "SharedBlastCache", "shared_blast_cache",
           "clear_shared_blast_cache"]


class _TrieNode:
    """One prefix of asserted roots; ``delta`` is the recording for the
    last root on the path (None until recorded or if over budget)."""

    __slots__ = ("children", "delta")

    def __init__(self):
        self.children: dict[Term, _TrieNode] = {}
        self.delta: _BlastDelta | None = None


class _BlastDelta:
    """Everything one root's cold blast did to the solver stack.

    ``ops`` interleaves variable allocations (None) and clauses (tuples
    of literals, pre-normalization) in original call order; the
    ``*_items`` tuples are the cache entries appended during the blast,
    in insertion order, so merging them reproduces the cold caches.
    """

    __slots__ = ("ops", "root_lit", "n_clauses", "gate_items", "bool_items",
                 "bv_items", "varbit_items", "build_time")

    def __init__(self, ops, root_lit, gate_items, bool_items, bv_items,
                 varbit_items, build_time):
        self.ops = ops
        self.root_lit = root_lit
        self.n_clauses = sum(1 for op in ops if op is not None)
        self.gate_items = gate_items
        self.bool_items = bool_items
        self.bv_items = bv_items
        self.varbit_items = varbit_items
        self.build_time = build_time


class _RecordingSat:
    """Transparent SAT proxy that logs the op stream during a blast."""

    __slots__ = ("inner", "ops")

    def __init__(self, inner, ops: list):
        self.inner = inner
        self.ops = ops

    def new_var(self) -> int:
        self.ops.append(None)
        return self.inner.new_var()

    def add_clause(self, clause) -> None:
        self.ops.append(tuple(clause))
        self.inner.add_clause(clause)


class SharedBlastCache:
    """Process-wide replay trie shared by canonical sub-solvers.

    ``max_nodes`` bounds trie breadth (beyond it, new prefixes detach
    and fall back to cold blasting); ``max_ops`` bounds total recorded
    ops (beyond it, new deltas are not stored but replay of existing
    ones continues).  Neither bound affects results — only reuse.
    """

    def __init__(self, max_nodes: int = 65536, max_ops: int = 4_000_000):
        self.root = _TrieNode()
        self.max_nodes = max_nodes
        self.max_ops = max_ops
        self.nodes = 1
        self.ops_stored = 0
        self.hits = 0
        self.misses = 0
        self.clauses_replayed = 0
        self.time_saved_s = 0.0

    def descend(self, node: _TrieNode, term: Term) -> _TrieNode | None:
        """Child of ``node`` for ``term``; None when the trie is full
        (the caller detaches its cursor and cold-blasts from then on)."""
        child = node.children.get(term)
        if child is None:
            if self.nodes >= self.max_nodes:
                return None
            child = _TrieNode()
            node.children[term] = child
            self.nodes += 1
        return child

    def blast_assert(self, node: _TrieNode, term: Term,
                     blaster: "BitBlaster") -> int:
        """Blast boolean ``term`` into ``blaster``'s solver, replaying
        the recording at ``node`` if present (recording it otherwise).
        Returns the root literal.  Requires that the blaster's solver
        reached this point through this node's exact prefix."""
        builder = blaster.b
        delta = node.delta
        if delta is not None:
            self.hits += 1
            t0 = time.perf_counter()
            sat = builder.solver
            for op in delta.ops:
                if op is None:
                    sat.new_var()
                else:
                    sat.add_clause(list(op))
            builder._gate_cache.update(delta.gate_items)
            blaster._bool_cache.update(delta.bool_items)
            blaster._bv_cache.update(delta.bv_items)
            blaster._var_bits.update(delta.varbit_items)
            self.clauses_replayed += delta.n_clauses
            self.time_saved_s += max(
                0.0, delta.build_time - (time.perf_counter() - t0))
            return delta.root_lit
        self.misses += 1
        g0 = len(builder._gate_cache)
        b0 = len(blaster._bool_cache)
        v0 = len(blaster._bv_cache)
        vb0 = len(blaster._var_bits)
        ops: list = []
        orig = builder.solver
        builder.solver = _RecordingSat(orig, ops)
        t0 = time.perf_counter()
        try:
            lit = blaster.blast_bool(term)
        finally:
            builder.solver = orig
        build_time = time.perf_counter() - t0
        if self.ops_stored + len(ops) <= self.max_ops:
            node.delta = _BlastDelta(
                tuple(ops), lit,
                tuple(islice(builder._gate_cache.items(), g0, None)),
                tuple(islice(blaster._bool_cache.items(), b0, None)),
                tuple(islice(blaster._bv_cache.items(), v0, None)),
                tuple(islice(blaster._var_bits.items(), vb0, None)),
                build_time,
            )
            self.ops_stored += len(ops)
        return lit

    def stats_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "nodes": self.nodes,
            "ops_stored": self.ops_stored,
            "clauses_replayed": self.clauses_replayed,
            "time_saved_s": self.time_saved_s,
        }


_SHARED: SharedBlastCache | None = None


def shared_blast_cache() -> SharedBlastCache:
    """The per-process shared blast cache (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SharedBlastCache()
    return _SHARED


def clear_shared_blast_cache() -> None:
    global _SHARED
    _SHARED = None


class BitBlaster:
    def __init__(self, builder: CnfBuilder):
        self.b = builder
        self._bv_cache: dict[Term, list[int]] = {}
        self._bool_cache: dict[Term, int] = {}
        self._var_bits: dict[Term, list[int]] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def blast_bool(self, t: Term) -> int:
        if t.width != 0:
            raise TypeError(f"expected boolean term, got bv<{t.width}>")
        lit = self._bool_cache.get(t)
        if lit is None:
            lit = self._blast_bool(t)
            self._bool_cache[t] = lit
        return lit

    def blast_bv(self, t: Term) -> list[int]:
        if t.width == 0:
            raise TypeError("expected bitvector term, got boolean")
        bits = self._bv_cache.get(t)
        if bits is None:
            bits = self._blast_bv(t)
            assert len(bits) == t.width, (t.op, t.width, len(bits))
            self._bv_cache[t] = bits
        return bits

    def var_bits(self, t: Term) -> list[int] | None:
        """SAT literals allocated for a BV variable (for model extraction)."""
        return self._var_bits.get(t)

    def bool_var_lit(self, t: Term) -> int | None:
        return self._bool_cache.get(t)

    # ------------------------------------------------------------------
    # Booleans
    # ------------------------------------------------------------------

    def _blast_bool(self, t: Term) -> int:
        b = self.b
        op = t.op
        if op == "const":
            return b.const(t.payload)
        if op == "var":
            return b.fresh()
        if op == "not":
            return -self.blast_bool(t.args[0])
        if op == "and":
            return b.and_many([self.blast_bool(a) for a in t.args])
        if op == "or":
            return b.or_many([self.blast_bool(a) for a in t.args])
        if op == "xor":
            return b.xor_(self.blast_bool(t.args[0]), self.blast_bool(t.args[1]))
        if op == "eq":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            return b.and_many([b.iff(i, j) for i, j in zip(x, y)])
        if op == "ult":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            return self._ult(x, y)
        if op == "slt":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            # signed: flip MSBs and compare unsigned
            x2 = x[:-1] + [-x[-1]]
            y2 = y[:-1] + [-y[-1]]
            return self._ult(x2, y2)
        raise ValueError(f"cannot blast boolean op {op}")

    def _ult(self, x: list[int], y: list[int]) -> int:
        """x < y unsigned via borrow chain, LSB first."""
        b = self.b
        lt = b.FALSE
        for xi, yi in zip(x, y):
            # From LSB to MSB: lt' = (~xi & yi) | (xi==yi & lt)
            bit_lt = b.and_(-xi, yi)
            same = b.iff(xi, yi)
            lt = b.or_(bit_lt, b.and_(same, lt))
        return lt

    # ------------------------------------------------------------------
    # Bitvectors
    # ------------------------------------------------------------------

    def _blast_bv(self, t: Term) -> list[int]:
        b = self.b
        op = t.op
        w = t.width
        if op == "const":
            return [b.const(bool((t.payload >> i) & 1)) for i in range(w)]
        if op == "var":
            bits = [b.fresh() for _ in range(w)]
            self._var_bits[t] = bits
            return bits
        if op == "bvnot":
            return [-x for x in self.blast_bv(t.args[0])]
        if op in ("bvand", "bvor", "bvxor"):
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            gate = {"bvand": b.and_, "bvor": b.or_, "bvxor": b.xor_}[op]
            return [gate(i, j) for i, j in zip(x, y)]
        if op == "bvadd":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            return self._adder(x, y, b.FALSE)[0]
        if op == "bvsub":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            return self._adder(x, [-j for j in y], b.TRUE)[0]
        if op == "bvmul":
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            return self._multiplier(x, y)
        if op in ("bvudiv", "bvurem"):
            x = self.blast_bv(t.args[0])
            y = self.blast_bv(t.args[1])
            q, r = self._divider(x, y)
            # SMT-LIB: division by zero -> all-ones quotient, remainder = x.
            y_is_zero = b.and_many([-j for j in y])
            if op == "bvudiv":
                return [b.ite(y_is_zero, b.TRUE, qi) for qi in q]
            return [b.ite(y_is_zero, xi, ri) for xi, ri in zip(x, r)]
        if op == "bvshl":
            return self._shifter(t, left=True, arith=False)
        if op == "bvlshr":
            return self._shifter(t, left=False, arith=False)
        if op == "bvashr":
            return self._shifter(t, left=False, arith=True)
        if op == "concat":
            bits: list[int] = []
            for child in reversed(t.args):  # last arg is least significant
                bits.extend(self.blast_bv(child))
            return bits
        if op == "extract":
            hi, lo = t.payload
            inner = self.blast_bv(t.args[0])
            return inner[lo : hi + 1]
        if op == "zext":
            inner = self.blast_bv(t.args[0])
            return inner + [b.FALSE] * (w - len(inner))
        if op == "sext":
            inner = self.blast_bv(t.args[0])
            return inner + [inner[-1]] * (w - len(inner))
        if op == "ite":
            c = self.blast_bool(t.args[0])
            x = self.blast_bv(t.args[1])
            y = self.blast_bv(t.args[2])
            return [b.ite(c, i, j) for i, j in zip(x, y)]
        raise ValueError(f"cannot blast bitvector op {op}")

    # -- circuits ---------------------------------------------------------

    def _adder(self, x: list[int], y: list[int], cin: int) -> tuple[list[int], int]:
        b = self.b
        out: list[int] = []
        c = cin
        for xi, yi in zip(x, y):
            s, c = b.full_adder(xi, yi, c)
            out.append(s)
        return out, c

    def _multiplier(self, x: list[int], y: list[int]) -> list[int]:
        b = self.b
        w = len(x)
        acc = [b.FALSE] * w
        for i in range(w):
            # Partial product: (x << i) & y[i]
            pp = [b.FALSE] * i + [b.and_(x[k], y[i]) for k in range(w - i)]
            acc, _ = self._adder(acc, pp, b.FALSE)
        return acc

    def _divider(self, x: list[int], y: list[int]) -> tuple[list[int], list[int]]:
        """Restoring division circuit; returns (quotient, remainder)."""
        b = self.b
        w = len(x)
        rem = [b.FALSE] * w
        quo = [b.FALSE] * w
        for i in range(w - 1, -1, -1):
            rem = [x[i]] + rem[:-1]  # shift left, bring in next dividend bit
            # ge = rem >= y  <=>  not (rem < y)
            ge = -self._ult(rem, y)
            diff, _ = self._adder(rem, [-j for j in y], b.TRUE)
            rem = [b.ite(ge, d, r) for d, r in zip(diff, rem)]
            quo[i] = ge
        return quo, rem

    def _shifter(self, t: Term, left: bool, arith: bool) -> list[int]:
        b = self.b
        x = self.blast_bv(t.args[0])
        y = self.blast_bv(t.args[1])
        w = len(x)
        fill_far = x[-1] if arith else b.FALSE
        # Barrel shifter over the bits of the shift amount that matter.
        stages = max(1, (w - 1).bit_length())
        bits = list(x)
        for s in range(stages):
            amt = 1 << s
            sel = y[s] if s < len(y) else b.FALSE
            shifted = []
            for i in range(w):
                src = i - amt if left else i + amt
                if 0 <= src < w:
                    shifted.append(bits[src])
                else:
                    shifted.append(b.FALSE if left else fill_far)
            bits = [b.ite(sel, sh, old) for sh, old in zip(shifted, bits)]
        # If any higher bit of the shift amount is set, the result is the
        # fully shifted-out value.
        high = b.or_many(y[stages:]) if len(y) > stages else b.FALSE
        far = [b.FALSE] * w if (left or not arith) else [fill_far] * w
        return [b.ite(high, f, v) for f, v in zip(far, bits)]
