"""Incremental solver facade — the stand-in for Z3 in this reproduction.

Follows the classic assumption-based incremental scheme: each ``push``
level gets a *selector* SAT variable; assertions at that level become
implications guarded by the selector, and ``check`` solves under the
active selectors as assumptions.  Popping a level simply drops its
selector (and permanently disables it), so the bit-blast cache and all
learned clauses survive across path exploration — mirroring the paper's
use of Z3 "configured with incremental solving" (§6).

The facade also keeps wall-clock statistics so the Fig. 7 benchmark can
report the fraction of CPU time spent in the solver.

Passing a :class:`repro.smt.cache.SolveCache` switches the solver into
*canonical* mode: every ``check`` is answered from the cache (or by a
pure, from-scratch canonical solve on a miss) instead of the
incremental SAT database.  Canonical mode trades incrementality for
memoization and — crucially — for history-independent models, which is
what makes parallel exploration reproduce sequential output exactly.
"""

from __future__ import annotations

import time
import warnings

from .bitblast import BitBlaster
from .cnf import CnfBuilder
from .elide import QueryElider
from .sat import SAT, UNSAT, SatSolver
from .terms import Term, bool_const, free_vars

__all__ = ["Solver", "Model", "SolverStats", "SolveResult"]


class SolverStats:
    """Aggregate statistics across all checks issued to one Solver."""

    def __init__(self):
        self.checks = 0
        self.sat_answers = 0
        self.unsat_answers = 0
        self.solve_time = 0.0
        self.blast_time = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_time_saved = 0.0
        # Query elision (see smt/elide.py).  ``sat_solves`` counts the
        # checks that actually reached blast+CDCL; checks minus
        # cache_hits minus the three elide_hits_* buckets equals it.
        self.sat_solves = 0
        self.elide_hits_model = 0
        self.elide_hits_rewrite = 0
        self.elide_hits_subsume = 0
        self.elide_misses = 0
        self.rewrite_time_s = 0.0
        self.elide_model_evictions = 0
        self.elide_unsat_evictions = 0
        # Shared bit-blast cache (see smt/bitblast.py): roots answered
        # by replaying a recorded op stream instead of walking the DAG.
        self.blast_cache_hits = 0
        self.blast_cache_misses = 0
        self.blast_clauses_replayed = 0
        self.blast_time_saved_s = 0.0
        # Solver portfolio (see smt/backends.py): per-backend counters,
        # keyed by backend name, recorded only for portfolio-dispatched
        # queries; plus how many queries escalated into a race.
        self.backend_queries: dict[str, int] = {}
        self.backend_wins: dict[str, int] = {}
        self.backend_timeouts: dict[str, int] = {}
        self.backend_errors: dict[str, int] = {}
        self.portfolio_races = 0
        # Incremental status plane (incremental=True facades): stack
        # traffic, trail reuse, and clause-database hygiene, mirrored
        # from the underlying SatSolver after each check.
        self.inc_solves = 0
        self.inc_levels_pushed = 0
        self.inc_levels_popped = 0
        self.inc_levels_reused = 0
        self.inc_levels_assumed = 0
        self.inc_learned_retained = 0
        self.inc_learned_deleted = 0
        self.inc_clauses_gced = 0
        self.inc_db_reductions = 0
        self.inc_heap_rebuilds = 0
        self.inc_selectors_retired = 0

    @property
    def total_time(self) -> float:
        return self.solve_time + self.blast_time

    @property
    def elide_hits(self) -> int:
        return (self.elide_hits_model + self.elide_hits_rewrite
                + self.elide_hits_subsume)

    def as_dict(self) -> dict:
        return {
            "checks": self.checks,
            "sat": self.sat_answers,
            "unsat": self.unsat_answers,
            "solve_time_s": self.solve_time,
            "blast_time_s": self.blast_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_time_saved_s": self.cache_time_saved,
            "sat_solves": self.sat_solves,
            "elide_hits_model": self.elide_hits_model,
            "elide_hits_rewrite": self.elide_hits_rewrite,
            "elide_hits_subsume": self.elide_hits_subsume,
            "elide_misses": self.elide_misses,
            "rewrite_time_s": self.rewrite_time_s,
            "elide_model_evictions": self.elide_model_evictions,
            "elide_unsat_evictions": self.elide_unsat_evictions,
            "blast_cache_hits": self.blast_cache_hits,
            "blast_cache_misses": self.blast_cache_misses,
            "blast_clauses_replayed": self.blast_clauses_replayed,
            "blast_time_saved_s": self.blast_time_saved_s,
            "inc_solves": self.inc_solves,
            "inc_levels_pushed": self.inc_levels_pushed,
            "inc_levels_popped": self.inc_levels_popped,
            "inc_levels_reused": self.inc_levels_reused,
            "inc_levels_assumed": self.inc_levels_assumed,
            "inc_learned_retained": self.inc_learned_retained,
            "inc_learned_deleted": self.inc_learned_deleted,
            "inc_clauses_gced": self.inc_clauses_gced,
            "inc_db_reductions": self.inc_db_reductions,
            "inc_heap_rebuilds": self.inc_heap_rebuilds,
            "inc_selectors_retired": self.inc_selectors_retired,
            "backend_queries": dict(self.backend_queries),
            "backend_wins": dict(self.backend_wins),
            "backend_timeouts": dict(self.backend_timeouts),
            "backend_errors": dict(self.backend_errors),
            "portfolio_races": self.portfolio_races,
        }


class SolveResult(str):
    """The answer to one ``check``: a status plus structured metadata.

    A :class:`SolveResult` *is* its status string (``"sat"`` or
    ``"unsat"``), so every existing comparison — ``res == "sat"``,
    ``res != "sat"``, dict keys, formatting — keeps working unchanged;
    the structured fields ride along:

    - ``status``: the plain status string (shim property).
    - ``model``: the :class:`Model` for ``check_and_model`` SAT
      answers; None from plain ``check`` (extract via ``Solver.model``).
    - ``backend``: which solver back end answered ("native", an
      external back-end name, "cache", or "elide").
    - ``stats``: the owning solver's :class:`SolverStats` at answer
      time.

    Tuple unpacking (``status, model = solver.check_and_model(...)``)
    is kept as a deprecated shim for one release.
    """

    __slots__ = ("model", "backend", "stats")

    def __new__(cls, status: str, model=None, backend: str = "native",
                stats=None):
        self = super().__new__(cls, status)
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "backend", backend)
        object.__setattr__(self, "stats", stats)
        return self

    @property
    def status(self) -> str:
        return str(self)

    def __setattr__(self, name, value):
        raise AttributeError("SolveResult is immutable")

    def __iter__(self):
        warnings.warn(
            "unpacking a SolveResult as (status, model) is deprecated; "
            "use result.status and result.model instead",
            DeprecationWarning, stacklevel=2)
        yield str(self)
        yield self.model

    def __repr__(self) -> str:
        return (f"SolveResult({str(self)!r}, backend={self.backend!r}, "
                f"model={self.model!r})")

    def __reduce__(self):
        # Stats hold live solver references; they don't cross pickles.
        return (SolveResult, (str(self), self.model, self.backend, None))


class Model:
    """A satisfying assignment mapping variable terms to Python values."""

    def __init__(self, values: dict[Term, int | bool]):
        self._values = values

    def __getitem__(self, var: Term) -> int | bool:
        return self._values.get(var, False if var.width == 0 else 0)

    def get(self, var: Term, default=None):
        return self._values.get(var, default)

    def __contains__(self, var: Term) -> bool:
        return var in self._values

    def as_dict(self) -> dict[Term, int | bool]:
        return dict(self._values)

    def __repr__(self) -> str:
        items = ", ".join(
            f"{v.payload}={val:#x}" if isinstance(val, int) and not isinstance(val, bool) else f"{v.payload}={val}"
            for v, val in sorted(self._values.items(), key=lambda kv: str(kv[0].payload))
        )
        return f"Model({items})"


class Solver:
    """Incremental QF_BV solver with push/pop and model extraction."""

    def __init__(self, cache=None, elide: bool = False,
                 elide_models: int = 8, elide_unsat: int = 64,
                 blast_share=None, portfolio=None,
                 portfolio_need_model: bool = False,
                 incremental: bool = False):
        self._sat = SatSolver()
        self._builder = CnfBuilder(self._sat)
        self._blaster = BitBlaster(self._builder)
        # Incremental status plane: new clauses attach to the live SAT
        # trail, checks reuse the assumption-compatible trail prefix,
        # and pop() retires selectors instead of asserting them false —
        # so learned clauses and most of the trail survive across
        # sibling checks.  Status answers are identical either way;
        # models become history-dependent, so this mode is only for
        # callers that consume statuses (the explorer's feasibility
        # plane) and it is ignored in canonical (cache) mode.
        self.incremental = bool(incremental) and cache is None
        if self.incremental:
            self._sat.keep_trail_on_add = True
        # Solver portfolio (smt/backends.py): when set and active, the
        # final CDCL solve of each check is dispatched through it so
        # hard queries race external back ends.  ``portfolio_need_model``
        # marks solvers whose SAT answers must carry the primary
        # back end's model (the canonical sub-solver) — external SAT
        # wins then only decide the verdict, never the model.
        self._portfolio = portfolio
        self._portfolio_need_model = portfolio_need_model
        self._external_assignment: dict[int, bool] | None = None
        self._status_only_sat = False
        self._last_backend = "native"
        # Shared blast cache (smt/bitblast.py): sound only while this
        # solver's op stream is a pure function of the base assertion
        # sequence, so the cursor detaches on push() or extras blasting.
        self._share = blast_share
        self._share_node = blast_share.root if blast_share is not None else None
        # Stack of (selector literal, asserted terms) per level; level 0
        # assertions are added as hard unit clauses.
        self._levels: list[tuple[int | None, list[Term]]] = []
        self._base_assertions: list[Term] = []
        self._last_assumptions: list[Term] = []
        # Canonical mode (see module docstring): answers come from the
        # SolveCache; the incremental SAT machinery stays idle.
        self.cache = cache
        self._cached_model: Model | None = None
        self.stats = SolverStats()
        # Query elision (smt/elide.py).  In canonical mode only UNSAT
        # answers may be elided (sat_ok=False): an elided SAT model is
        # whatever witness was cached, not the history-independent model
        # a canonical solve binds, and canonical models reach test
        # output.  The incremental solver consumes only the status, so
        # it gets the full pipeline.
        self.elider = None
        if elide:
            self.elider = QueryElider(self.stats, max_models=elide_models,
                                      max_unsat=elide_unsat,
                                      sat_ok=cache is None)
        self._elided_model: dict | None = None

    # ------------------------------------------------------------------
    # Assertion stack
    # ------------------------------------------------------------------

    def push(self) -> None:
        selector = None if self.cache is not None else self._sat.new_var()
        self._share_node = None  # selector vars desync the replay stream
        self._levels.append((selector, []))
        if self.incremental:
            self.stats.inc_levels_pushed += 1

    def pop(self, n: int = 1) -> None:
        for _ in range(n):
            if not self._levels:
                raise IndexError("pop from empty assertion stack")
            selector, _terms = self._levels.pop()
            # Permanently disable the selector so guarded clauses are
            # satisfied forever after.  The incremental plane retires it
            # (no unit clause, trail survives, clauses get GC'd); the
            # one-shot plane asserts it false at level 0.
            if selector is not None:
                if self.incremental:
                    self._sat.retire_selector(selector)
                    self.stats.inc_levels_popped += 1
                else:
                    self._sat.add_clause([-selector])

    @property
    def depth(self) -> int:
        return len(self._levels)

    def add(self, term: Term) -> None:
        """Assert a boolean term at the current level."""
        if term.width != 0:
            raise TypeError("assertions must be boolean terms")
        if self.cache is not None:
            # Canonical mode: record only; checks key on the term set.
            if self._levels:
                self._levels[-1][1].append(term)
            else:
                self._base_assertions.append(term)
            return
        t0 = time.perf_counter()
        share = self._share
        node = None
        if share is not None and self._share_node is not None:
            if self._levels:
                self._share_node = None  # guarded clauses break replay
            else:
                node = share.descend(self._share_node, term)
                self._share_node = node
        if node is not None:
            hits0 = share.hits
            replayed0 = share.clauses_replayed
            saved0 = share.time_saved_s
            lit = share.blast_assert(node, term, self._blaster)
            stats = self.stats
            if share.hits > hits0:
                stats.blast_cache_hits += 1
            else:
                stats.blast_cache_misses += 1
            stats.blast_clauses_replayed += share.clauses_replayed - replayed0
            stats.blast_time_saved_s += share.time_saved_s - saved0
        else:
            lit = self._blaster.blast_bool(term)
        self.stats.blast_time += time.perf_counter() - t0
        if self._levels:
            selector, terms = self._levels[-1]
            terms.append(term)
            self._sat.add_clause([-selector, lit])
        else:
            self._base_assertions.append(term)
            self._sat.add_clause([lit])

    def assertions(self) -> list[Term]:
        out = list(self._base_assertions)
        for _sel, terms in self._levels:
            out.extend(terms)
        return out

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def check(self, *extra: Term) -> "SolveResult":
        """Returns the :class:`SolveResult` for the current assertions
        (comparable to ``"sat"``/``"unsat"`` like the plain string it
        replaced).

        ``extra`` terms are treated as one-shot assumptions that do not
        persist after the call.
        """
        if self.cache is not None:
            return self._check_canonical(extra)
        # Solving can learn level-0 facts (and extras blast one-shot
        # gates), after which recorded op streams would no longer
        # reproduce this solver's state: stop record/replay here.  The
        # canonical sub-solver checks once, after all adds, so its
        # whole assertion sequence still goes through the share.
        self._share_node = None
        self._elided_model = None
        self._external_assignment = None
        self._status_only_sat = False
        conjuncts = None
        if self.elider is not None:
            conjuncts = self.assertions() + list(extra)
            status, witness = self.elider.try_answer(conjuncts)
            if status is not None:
                self._last_assumptions = list(extra)
                self.stats.checks += 1
                self._last_backend = "elide"
                if status == "sat":
                    self.stats.sat_answers += 1
                    self._elided_model = witness
                else:
                    self.stats.unsat_answers += 1
                return SolveResult(status, backend="elide", stats=self.stats)
        assumptions = [sel for sel, _terms in self._levels]
        t0 = time.perf_counter()
        for term in extra:
            lit = self._blaster.blast_bool(term)
            assumptions.append(lit)
        self.stats.blast_time += time.perf_counter() - t0
        self._last_assumptions = list(extra)

        t0 = time.perf_counter()
        if self._portfolio is not None and self._portfolio.active:
            res, ext_assignment, backend = self._portfolio.solve_with(
                self._sat, assumptions,
                need_model=self._portfolio_need_model,
                terms=self.assertions() + list(extra),
                stats=self.stats)
            self._external_assignment = ext_assignment
            self._status_only_sat = (res == SAT and backend != "native"
                                     and ext_assignment is None)
            self._last_backend = backend
        else:
            res = self._sat.solve(assumptions, reuse_trail=self.incremental)
            self._last_backend = "native"
        self.stats.solve_time += time.perf_counter() - t0
        if self.incremental:
            self._sync_incremental_stats()
        self.stats.checks += 1
        self.stats.sat_solves += 1
        if res == SAT:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        if self.elider is not None:
            # Feed the real answer back so future sibling queries elide.
            if res == SAT:
                if not self._status_only_sat:
                    self.elider.note_model(self.model().as_dict())
            else:
                self.elider.note_unsat(conjuncts)
        return SolveResult("sat" if res == SAT else "unsat",
                           backend=self._last_backend, stats=self.stats)

    def try_elide_path(self, conjuncts: list[Term]) -> "SolveResult | None":
        """Elision-only attempt at a conjunct-list check (no blasting).

        The incremental status plane consults the elider *before*
        syncing its assertion stack, so conjuncts of elided checks are
        never blasted — matching the one-shot plane, where elision
        short-circuits ahead of the extras blast.  Returns None on an
        elider miss (no check is recorded; the caller follows up with
        :meth:`check_path` or answers from elsewhere).
        """
        if self.elider is None:
            return None
        status, witness = self.elider.try_answer(conjuncts)
        if status is None:
            return None
        self._elided_model = witness if status == "sat" else None
        self._external_assignment = None
        self._status_only_sat = False
        self._last_assumptions = []
        self._last_backend = "elide"
        self.stats.checks += 1
        if status == "sat":
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        return SolveResult(status, backend="elide", stats=self.stats)

    def check_path(self, conjuncts: list[Term]) -> "SolveResult":
        """Incremental-plane check of an explicit conjunct list.

        Syncs the assertion stack to ``conjuncts`` — pop the stale
        suffix (retiring those selectors), push one level per new
        conjunct — and solves under the active selectors, reusing the
        SAT trail prefix shared with the previous check.  Callers that
        want elision must try :meth:`try_elide_path` first; this method
        always reaches the SAT core.
        """
        if not self.incremental:
            raise RuntimeError("check_path requires an incremental solver")
        self._share_node = None
        self._elided_model = None
        self._external_assignment = None
        self._status_only_sat = False
        common = 0
        for (_sel, terms), want in zip(self._levels, conjuncts):
            if len(terms) == 1 and (terms[0] is want or terms[0] == want):
                common += 1
            else:
                break
        if len(self._levels) > common:
            self.pop(len(self._levels) - common)
        for term in conjuncts[common:]:
            self.push()
            self.add(term)
        assumptions = [sel for sel, _terms in self._levels]
        self._last_assumptions = []
        t0 = time.perf_counter()
        res = self._sat.solve(assumptions, reuse_trail=True)
        self.stats.solve_time += time.perf_counter() - t0
        self._last_backend = "native"
        self._sync_incremental_stats()
        self.stats.checks += 1
        self.stats.sat_solves += 1
        if res == SAT:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        if self.elider is not None:
            if res == SAT:
                self.elider.note_model(self.model().as_dict())
            else:
                self.elider.note_unsat(conjuncts)
        return SolveResult("sat" if res == SAT else "unsat",
                           backend="native", stats=self.stats)

    def _sync_incremental_stats(self) -> None:
        """Mirror the SatSolver's incremental counters (running totals)
        into this facade's stats after a native solve."""
        sat_stats = self._sat.stats
        st = self.stats
        st.inc_solves += 1
        st.inc_levels_reused = sat_stats["levels_reused"]
        st.inc_levels_assumed = sat_stats["levels_assumed"]
        st.inc_clauses_gced = sat_stats["clauses_gced"]
        st.inc_learned_deleted = sat_stats["learned_deleted"]
        st.inc_db_reductions = sat_stats["db_reductions"]
        st.inc_heap_rebuilds = sat_stats["heap_rebuilds"]
        st.inc_selectors_retired = sat_stats["selectors_retired"]
        st.inc_learned_retained = len(self._sat._learned)

    def _check_canonical(self, extra: tuple[Term, ...]) -> "SolveResult":
        """Canonical-mode check: answer from the SolveCache."""
        cache = self.cache
        self._last_assumptions = list(extra)
        self._elided_model = None
        key = cache.key_for(self.assertions() + list(extra))
        entry = cache.lookup(key)
        self.stats.checks += 1
        if entry is not None:
            self.stats.cache_hits += 1
            self.stats.cache_time_saved += entry.solve_time
        else:
            self.stats.cache_misses += 1
            entry = None
            if self.elider is not None:
                # UNSAT-only elision (sat_ok=False): an "unsat" verdict
                # is answer-identical to what a canonical solve would
                # return, so storing it keeps the cache history-free.
                status, _witness = self.elider.try_answer(key.terms)
                if status == "unsat":
                    entry = cache.store_elided(key, "unsat")
            if entry is None:
                t0 = time.perf_counter()
                entry = cache.solve(key)
                self.stats.solve_time += time.perf_counter() - t0
                self.stats.sat_solves += 1
                cache.store(key, entry)
                if self.elider is not None and entry.status == "unsat":
                    self.elider.note_unsat(key.terms)
        self._last_backend = getattr(entry, "backend", "native")
        if entry.status == "sat":
            self.stats.sat_answers += 1
            # Rebind the index-keyed cached model to this query's own
            # variable terms (a hit may come from a renamed twin set).
            self._cached_model = Model(entry.model_values(key))
        else:
            self.stats.unsat_answers += 1
            self._cached_model = None
        return SolveResult(entry.status, backend=self._last_backend,
                           stats=self.stats)

    def model(self, variables=None) -> Model:
        """Extract a model after a "sat" answer.

        ``variables``: iterable of variable terms to extract; defaults
        to every variable that appeared in any assertion or in the most
        recent ``check`` call's one-shot assumptions.
        """
        if self.cache is not None:
            m = self._cached_model
            if m is None:
                raise RuntimeError("model() requires a preceding sat check")
            if variables is None:
                return m
            return Model({v: m[v] for v in variables})
        if self._elided_model is not None:
            # The last check was answered by the elider; its witness is
            # the model (unmentioned variables read as zero/False, which
            # Model's lookup default already provides).
            m = Model(dict(self._elided_model))
            if variables is None:
                return m
            return Model({v: m[v] for v in variables})
        if self._status_only_sat:
            raise RuntimeError(
                f"the last check was answered status-only by backend "
                f"{self._last_backend!r}; no model is available")
        if self._external_assignment is not None:
            # A raced external back end won with a clause-verified
            # assignment: read values through the same blaster bit maps
            # the native path uses.
            assignment = self._external_assignment
        else:
            assignment = self._sat.model()
        if variables is None:
            variables = set()
            for term in self.assertions():
                variables |= free_vars(term)
            for term in self._last_assumptions:
                variables |= free_vars(term)
        values: dict[Term, int | bool] = {}
        for var in variables:
            if var.width == 0:
                lit = self._blaster.bool_var_lit(var)
                values[var] = assignment.get(abs(lit), False) ^ (lit < 0) if lit else False
            else:
                bits = self._blaster.var_bits(var)
                if bits is None:
                    values[var] = 0
                    continue
                v = 0
                for i, lit in enumerate(bits):
                    bit = assignment.get(abs(lit), False)
                    if lit < 0:
                        bit = not bit
                    if bit:
                        v |= 1 << i
                values[var] = v
        return Model(values)

    @property
    def last_backend(self) -> str:
        """Name of the back end that answered the most recent check."""
        return self._last_backend

    # Convenience ------------------------------------------------------

    def check_and_model(self, *extra: Term) -> "SolveResult":
        """One-shot check with the model attached to the result.

        Returns a :class:`SolveResult`; ``result.model`` is the
        :class:`Model` on SAT and None otherwise.  Legacy
        ``status, model = ...`` unpacking still works (deprecated).
        """
        status = self.check(*extra)
        if status != "sat":
            return SolveResult(str(status), model=None,
                               backend=self._last_backend, stats=self.stats)
        # NOTE: when extra assumptions were used the SAT trail already
        # reflects them at the moment of model extraction.
        return SolveResult(str(status), model=self.model(),
                           backend=self._last_backend, stats=self.stats)


def quick_check(terms: list[Term]) -> tuple[str, Model | None]:
    """Solve a list of boolean terms with a throwaway solver."""
    s = Solver()
    for t in terms:
        s.add(t)
    status = s.check()
    return (status, s.model() if status == "sat" else None)
