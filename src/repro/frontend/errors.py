"""Diagnostics for the P4-16 front end."""

from __future__ import annotations

__all__ = ["SourceLocation", "P4Error", "LexError", "ParseError", "TypeError_"]


class SourceLocation:
    """A (line, column) position in a named source buffer."""

    __slots__ = ("source", "line", "column")

    def __init__(self, source: str, line: int, column: int):
        self.source = source
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.source}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.source == other.source
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.source, self.line, self.column))


_UNKNOWN = SourceLocation("<unknown>", 0, 0)


class P4Error(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or _UNKNOWN
        self.message = message
        super().__init__(f"{self.location}: {message}")


class LexError(P4Error):
    """Invalid token in the source text."""


class ParseError(P4Error):
    """Source does not conform to the grammar subset."""


class TypeError_(P4Error):
    """Type or width error found while lowering to the IR."""
