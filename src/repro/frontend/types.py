"""Resolved (width-computed) types for the P4 subset.

The AST carries syntactic type expressions; lowering resolves them into
these semantic types.  Every data-plane value ultimately flattens to
fixed-width bitvectors (plus per-header validity bits), which is what
the symbolic executor and the concrete interpreters both operate on.
"""

from __future__ import annotations

from .errors import TypeError_

__all__ = [
    "P4Type", "BitsType", "BoolType", "ErrorType", "EnumType",
    "HeaderType", "StructType", "StackType", "VarbitType", "StringType",
    "bit_width_of",
]


class P4Type:
    """Base class for resolved types."""

    def bit_width(self) -> int:
        raise NotImplementedError

    def is_scalar(self) -> bool:
        return False


class BitsType(P4Type):
    """``bit<W>`` or ``int<W>`` (``signed`` distinguishes them)."""

    __slots__ = ("width", "signed")

    _cache: dict[tuple[int, bool], "BitsType"] = {}

    def __new__(cls, width: int, signed: bool = False):
        key = (width, signed)
        inst = cls._cache.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.width = width
            inst.signed = signed
            cls._cache[key] = inst
        return inst

    def __reduce__(self):
        # Interned via __new__; pickle must rebuild through the cache.
        return (BitsType, (self.width, self.signed))

    def bit_width(self) -> int:
        return self.width

    def is_scalar(self) -> bool:
        return True

    def __repr__(self):
        return f"int<{self.width}>" if self.signed else f"bit<{self.width}>"


class BoolType(P4Type):
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (BoolType, ())

    def bit_width(self) -> int:
        return 1

    def is_scalar(self) -> bool:
        return True

    def __repr__(self):
        return "bool"


class ErrorType(P4Type):
    """The ``error`` type; values are indices into the error registry."""

    WIDTH = 32
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (ErrorType, ())

    def bit_width(self) -> int:
        return self.WIDTH

    def is_scalar(self) -> bool:
        return True

    def __repr__(self):
        return "error"


class StringType(P4Type):
    """Strings only occur in annotations; never on the data path."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (StringType, ())

    def bit_width(self) -> int:
        raise TypeError_("strings have no bit width")

    def __repr__(self):
        return "string"


class EnumType(P4Type):
    """Enums; serializable ones carry an underlying width and explicit
    member values, plain ones get synthetic consecutive values."""

    def __init__(self, name: str, members: list[str],
                 underlying_width: int | None = None,
                 member_values: dict[str, int] | None = None):
        self.name = name
        self.members = list(members)
        if underlying_width is None:
            underlying_width = max(1, (max(len(members) - 1, 1)).bit_length())
        self.width = underlying_width
        if member_values:
            self.values = dict(member_values)
        else:
            self.values = {m: i for i, m in enumerate(members)}

    def bit_width(self) -> int:
        return self.width

    def is_scalar(self) -> bool:
        return True

    def value_of(self, member: str) -> int:
        if member not in self.values:
            raise TypeError_(f"enum {self.name} has no member {member}")
        return self.values[member]

    def __repr__(self):
        return f"enum {self.name}"


class HeaderType(P4Type):
    """A header: ordered fixed-width fields plus an implicit validity bit."""

    def __init__(self, name: str, fields: list[tuple[str, P4Type]]):
        self.name = name
        self.fields = list(fields)
        self.field_types = dict(fields)
        for fname, ftype in fields:
            if not ftype.is_scalar() and not isinstance(ftype, VarbitType):
                raise TypeError_(
                    f"header {name} field {fname} must be scalar, got {ftype!r}"
                )

    def bit_width(self) -> int:
        return sum(t.bit_width() for _n, t in self.fields)

    def field_offset(self, field: str) -> int:
        """Offset of ``field`` from the most significant end (wire order)."""
        off = 0
        for fname, ftype in self.fields:
            if fname == field:
                return off
            off += ftype.bit_width()
        raise TypeError_(f"header {self.name} has no field {field}")

    def __repr__(self):
        return f"header {self.name}"


class StructType(P4Type):
    def __init__(self, name: str, fields: list[tuple[str, P4Type]]):
        self.name = name
        self.fields = list(fields)
        self.field_types = dict(fields)

    def bit_width(self) -> int:
        return sum(t.bit_width() for _n, t in self.fields)

    def __repr__(self):
        return f"struct {self.name}"


class StackType(P4Type):
    def __init__(self, element: HeaderType, size: int):
        if size <= 0:
            raise TypeError_("header stack size must be positive")
        self.element = element
        self.size = size

    def bit_width(self) -> int:
        return self.element.bit_width() * self.size

    def __repr__(self):
        return f"{self.element!r}[{self.size}]"


class VarbitType(P4Type):
    """``varbit<N>``: modeled as a max-width vector + a length field.

    The symbolic executor treats a varbit as a (value, current_width)
    pair; only constant extract lengths are supported, matching the
    transformations P4Testgen's mid-end applies.
    """

    def __init__(self, max_width: int):
        self.max_width = max_width

    def bit_width(self) -> int:
        return self.max_width

    def __repr__(self):
        return f"varbit<{self.max_width}>"


def bit_width_of(t: P4Type) -> int:
    return t.bit_width()
