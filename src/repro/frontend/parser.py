"""Recursive-descent parser for the P4-16 subset.

The subset covers everything the reproduced paper's techniques touch:
headers and header stacks, structs, enums/errors, parsers with selects
and value sets, controls with actions/tables (exact, ternary, lpm,
range, optional match kinds, const entries, priorities), extern
declarations, annotations, and the top-level package instantiation.

Like the real P4 grammar, type names are context-sensitive: once a
``header``/``struct``/``typedef``/``enum``/``extern`` name has been
declared it is treated as a type name, which is how ``(T) x`` casts are
disambiguated from parenthesized expressions.
"""

from __future__ import annotations

from . import ast as A
from .errors import ParseError
from .lexer import Token, tokenize

__all__ = ["parse_program", "Parser"]


# Type names available from the standard architecture headers we model.
_BUILTIN_TYPE_NAMES = {
    "packet_in", "packet_out",
    "standard_metadata_t",
    # v1model externs
    "counter", "direct_counter", "meter", "direct_meter", "register",
    "action_profile", "action_selector", "HashAlgorithm", "CounterType",
    "MeterType", "CloneType",
    # tna
    "ingress_intrinsic_metadata_t", "ingress_intrinsic_metadata_for_tm_t",
    "ingress_intrinsic_metadata_from_parser_t",
    "ingress_intrinsic_metadata_for_deparser_t",
    "egress_intrinsic_metadata_t", "egress_intrinsic_metadata_from_parser_t",
    "egress_intrinsic_metadata_for_deparser_t",
    "egress_intrinsic_metadata_for_output_port_t",
    "Register", "Counter", "Meter", "DirectCounter", "DirectMeter",
    "Hash", "Checksum", "Random", "Mirror", "Resubmit", "Digest",
    "ParserCounter", "ParserPriority",
}


class Parser:
    def __init__(self, tokens: list[Token], source: str = "<input>",
                 type_names: set[str] | None = None):
        self.tokens = tokens
        self.pos = 0
        self.source = source
        self.type_names: set[str] = (
            set(type_names) if type_names is not None else set(_BUILTIN_TYPE_NAMES)
        )

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, text: str, offset: int = 0) -> bool:
        return self.peek(offset).text == text

    def at_kind(self, kind: str, offset: int = 0) -> bool:
        return self.peek(offset).kind == kind

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if text == ">" and tok.text == ">>":
            # Nested type arguments: split ">>" into "> >", as in C++.
            from .lexer import Token as _Token

            first = _Token("OP", ">", tok.location)
            rest = _Token("OP", ">", tok.location)
            self.tokens[self.pos] = rest
            return first
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.location)
        return self.next()

    def expect_kind(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(f"expected {kind}, found {tok.text!r}", tok.location)
        return self.next()

    def expect_name(self) -> str:
        """Identifier (type names are also valid identifiers)."""
        tok = self.peek()
        if tok.kind not in ("ID",):
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.location)
        return self.next().text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def loc(self):
        return self.peek().location

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------

    def parse_program(self, includes=None) -> A.Program:
        decls = []
        while not self.at_kind("EOF"):
            decls.append(self.parse_top_level())
        return A.Program(
            declarations=decls, includes=list(includes or []), source=self.source
        )

    def parse_top_level(self):
        annotations = self.parse_annotations()
        tok = self.peek()
        text = tok.text
        if text == "const":
            return self.parse_const()
        if text == "typedef" or text == "type":
            return self.parse_typedef()
        if text == "header":
            return self.parse_header(annotations)
        if text == "header_union":
            return self.parse_header_union(annotations)
        if text == "struct":
            return self.parse_struct(annotations)
        if text == "enum":
            return self.parse_enum()
        if text == "error":
            return self.parse_error_decl()
        if text == "match_kind":
            return self.parse_match_kind()
        if text == "extern":
            return self.parse_extern()
        if text == "parser":
            return self.parse_parser(annotations)
        if text == "control":
            return self.parse_control(annotations)
        if text == "action":
            return self.parse_action(annotations)
        if text == "package":
            return self.parse_package()
        # Otherwise it must be an instantiation: Type(args) name;
        if tok.kind == "ID":
            return self.parse_instantiation(annotations)
        raise ParseError(f"unexpected token {text!r} at top level", tok.location)

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------

    def parse_annotations(self) -> list:
        annotations = []
        while self.at("@"):
            self.next()
            name = self.expect_kind("ID").text
            args = []
            if self.accept("("):
                if not self.at(")"):
                    args.append(self.parse_expression())
                    while self.accept(","):
                        args.append(self.parse_expression())
                self.expect(")")
            annotations.append(A.Annotation(name=name, args=args))
        return annotations

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def looks_like_instantiation(self) -> bool:
        """Matches ``Type(args) name;`` and ``Type<T,...>(args) name;``."""
        if not self.looks_like_type():
            return False
        i = 1
        if self.peek(i).text == "<":
            depth = 0
            while True:
                tok = self.peek(i)
                if tok.kind == "EOF":
                    return False
                if tok.text == "<":
                    depth += 1
                elif tok.text == ">":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                elif tok.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        i += 1
                        break
                elif tok.text in (";", "{", "}"):
                    return False
                i += 1
                if i > 40:
                    return False
        return self.peek(i).text == "("

    def looks_like_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.text in ("bit", "int", "varbit", "bool", "error", "void", "tuple"):
            return True
        return tok.kind == "ID" and tok.text in self.type_names

    def parse_type(self):
        loc = self.loc()
        tok = self.peek()
        if tok.text == "bit":
            self.next()
            width = 1
            if self.accept("<"):
                width = self.parse_width_expression()
                self.expect(">")
            return A.BitTypeAst(location=loc, width=width)
        if tok.text == "int":
            self.next()
            if self.accept("<"):
                width = self.parse_width_expression()
                self.expect(">")
                return A.IntTypeAst(location=loc, width=width)
            raise ParseError("arbitrary-precision 'int' type not supported", loc)
        if tok.text == "varbit":
            self.next()
            self.expect("<")
            width_tok = self.expect_kind("INT")
            self.expect(">")
            return A.VarbitTypeAst(location=loc, max_width=width_tok.value)
        if tok.text == "bool":
            self.next()
            return A.BoolTypeAst(location=loc)
        if tok.text == "error":
            self.next()
            return A.ErrorTypeAst(location=loc)
        if tok.text == "void":
            self.next()
            return A.VoidTypeAst(location=loc)
        if tok.text == "tuple":
            self.next()
            self.expect("<")
            elements = [self.parse_type()]
            while self.accept(","):
                elements.append(self.parse_type())
            self.expect(">")
            return A.TupleTypeAst(location=loc, elements=elements)
        if tok.kind == "ID":
            name = self.next().text
            if self.at("<") and self._angle_closes_as_type_args():
                self.next()
                args = [self.parse_type()]
                while self.accept(","):
                    args.append(self.parse_type())
                self.expect(">")
                base: object = A.SpecializedTypeAst(location=loc, base=name, args=args)
            else:
                base = A.TypeName(location=loc, name=name)
            # Header stacks: T[n]
            if self.at("[") and self.peek(1).kind == "INT" and self.peek(2).text == "]":
                self.next()
                size_tok = self.next()
                self.expect("]")
                return A.StackTypeAst(location=loc, element=base, size=size_tok.value)
            return base
        raise ParseError(f"expected a type, found {tok.text!r}", loc)

    def _angle_closes_as_type_args(self) -> bool:
        """Heuristic: does ``<`` start a type-argument list here?"""
        depth = 0
        i = 0
        while True:
            tok = self.peek(i)
            if tok.kind == "EOF":
                return False
            if tok.text == "<":
                depth += 1
            elif tok.text == ">":
                depth -= 1
                if depth == 0:
                    return True
            elif tok.text == ">>":
                depth -= 2
                if depth <= 0:
                    return True
            elif tok.text in (";", "{", "}", "==", "<=", ">=", "&&", "||"):
                return False
            i += 1
            if i > 40:
                return False

    # ------------------------------------------------------------------
    # Simple declarations
    # ------------------------------------------------------------------

    def parse_const(self):
        loc = self.loc()
        self.expect("const")
        ctype = self.parse_type()
        name = self.expect_name()
        self.expect("=")
        value = self.parse_expression()
        self.expect(";")
        return A.ConstDecl(location=loc, const_type=ctype, name=name, value=value)

    def parse_typedef(self):
        loc = self.loc()
        self.next()  # typedef or type
        target = self.parse_type()
        name = self.expect_name()
        self.expect(";")
        self.type_names.add(name)
        return A.TypedefDecl(location=loc, target=target, name=name)

    def _parse_field_list(self) -> list:
        fields = []
        self.expect("{")
        while not self.at("}"):
            f_annotations = self.parse_annotations()
            ftype = self.parse_type()
            fname = self.expect_name()
            self.expect(";")
            fields.append(
                A.StructField(field_type=ftype, name=fname, annotations=f_annotations)
            )
        self.expect("}")
        return fields

    def parse_header(self, annotations):
        loc = self.loc()
        self.expect("header")
        name = self.expect_name()
        fields = self._parse_field_list()
        self.type_names.add(name)
        return A.HeaderDecl(location=loc, name=name, fields=fields, annotations=annotations)

    def parse_header_union(self, annotations):
        loc = self.loc()
        self.expect("header_union")
        name = self.expect_name()
        fields = self._parse_field_list()
        self.type_names.add(name)
        return A.HeaderUnionDecl(
            location=loc, name=name, fields=fields, annotations=annotations
        )

    def parse_struct(self, annotations):
        loc = self.loc()
        self.expect("struct")
        name = self.expect_name()
        fields = self._parse_field_list()
        self.type_names.add(name)
        return A.StructDecl(location=loc, name=name, fields=fields, annotations=annotations)

    def parse_enum(self):
        loc = self.loc()
        self.expect("enum")
        underlying = None
        if self.at("bit"):
            underlying = self.parse_type()
        name = self.expect_name()
        self.expect("{")
        members = []
        member_values = {}
        while not self.at("}"):
            member = self.expect_name()
            members.append(member)
            if self.accept("="):
                value = self.parse_expression()
                if isinstance(value, A.IntLit):
                    member_values[member] = value.value
            if not self.accept(","):
                break
        self.expect("}")
        self.type_names.add(name)
        return A.EnumDecl(
            location=loc,
            name=name,
            members=members,
            underlying=underlying,
            member_values=member_values,
        )

    def parse_error_decl(self):
        loc = self.loc()
        self.expect("error")
        self.expect("{")
        members = []
        while not self.at("}"):
            members.append(self.expect_name())
            if not self.accept(","):
                break
        self.expect("}")
        return A.ErrorDecl(location=loc, members=members)

    def parse_match_kind(self):
        loc = self.loc()
        self.expect("match_kind")
        self.expect("{")
        members = []
        while not self.at("}"):
            members.append(self.expect_name())
            if not self.accept(","):
                break
        self.expect("}")
        return A.MatchKindDecl(location=loc, members=members)

    # ------------------------------------------------------------------
    # Externs, packages
    # ------------------------------------------------------------------

    def _parse_type_params(self) -> list:
        params = []
        if self.accept("<"):
            params.append(self.expect_name())
            self.type_names.update(params)
            while self.accept(","):
                p = self.expect_name()
                params.append(p)
                self.type_names.add(p)
            self.expect(">")
        return params

    def parse_params(self) -> list:
        params = []
        self.expect("(")
        while not self.at(")"):
            annotations = self.parse_annotations()
            direction = ""
            if self.peek().text in ("in", "out", "inout"):
                direction = self.next().text
            ptype = self.parse_type()
            pname = self.expect_name()
            default = None
            if self.accept("="):
                default = self.parse_expression()
            params.append(
                A.Param(
                    direction=direction,
                    param_type=ptype,
                    name=pname,
                    default=default,
                    annotations=annotations,
                )
            )
            if not self.accept(","):
                break
        self.expect(")")
        return params

    def parse_extern(self):
        loc = self.loc()
        self.expect("extern")
        # "extern TYPE name(params);" function form vs "extern Name {...}"
        # object form vs "extern Name<T> {...}".
        if (
            self.at_kind("ID")
            and (self.peek(1).text in ("{", "<"))
            and not self._extern_is_function()
        ):
            name = self.expect_name()
            type_params = self._parse_type_params()
            self.type_names.add(name)
            methods = []
            ctor_params = []
            self.expect("{")
            while not self.at("}"):
                self.parse_annotations()
                if self.at_kind("ID") and self.peek().text == name and self.peek(1).text == "(":
                    self.next()
                    ctor_params = self.parse_params()
                    self.expect(";")
                    continue
                rtype = self.parse_type()
                mname = self.expect_name()
                m_type_params = self._parse_type_params()
                mparams = self.parse_params()
                self.expect(";")
                methods.append(
                    A.ExternMethod(
                        return_type=rtype,
                        name=mname,
                        type_params=m_type_params,
                        params=mparams,
                    )
                )
            self.expect("}")
            return A.ExternDecl(
                location=loc,
                name=name,
                type_params=type_params,
                methods=methods,
                constructor_params=ctor_params,
            )
        # Function form.
        rtype = self.parse_type()
        name = self.expect_name()
        type_params = self._parse_type_params()
        params = self.parse_params()
        self.expect(";")
        return A.FunctionDecl(
            location=loc,
            return_type=rtype,
            name=name,
            type_params=type_params,
            params=params,
        )

    def _extern_is_function(self) -> bool:
        """Distinguish ``extern T<W> f(...)`` from ``extern Obj<T> { ... }``."""
        # Scan past a potential type (with <...>), then expect ID '('.
        i = 0
        depth = 0
        saw_angle = False
        while True:
            tok = self.peek(i)
            if tok.kind == "EOF":
                return False
            if tok.text == "<":
                depth += 1
                saw_angle = True
            elif tok.text == ">":
                depth -= 1
            elif depth == 0 and i > 0:
                if tok.text == "{":
                    return False
                if tok.kind == "ID" and self.peek(i + 1).text == "(":
                    return True
                if tok.text == ";":
                    return False
            i += 1
            if i > 30:
                return False

    def parse_package(self):
        loc = self.loc()
        self.expect("package")
        name = self.expect_name()
        type_params = self._parse_type_params()
        params = self.parse_params()
        self.expect(";")
        self.type_names.add(name)
        return A.PackageDecl(
            location=loc, name=name, type_params=type_params, params=params
        )

    def parse_instantiation(self, annotations):
        loc = self.loc()
        inst_type = self.parse_type()
        self.expect("(")
        args = []
        if not self.at(")"):
            args.append(self.parse_expression())
            while self.accept(","):
                args.append(self.parse_expression())
        self.expect(")")
        name = self.expect_name()
        self.expect(";")
        return A.Instantiation(
            location=loc, type_ast=inst_type, args=args, name=name, annotations=annotations
        )

    # ------------------------------------------------------------------
    # Parsers
    # ------------------------------------------------------------------

    def parse_parser(self, annotations):
        loc = self.loc()
        self.expect("parser")
        name = self.expect_name()
        type_params = self._parse_type_params()
        params = self.parse_params()
        if self.accept(";"):
            return A.ParserTypeDecl(
                location=loc, name=name, type_params=type_params, params=params
            )
        self.expect("{")
        locals_ = []
        states = []
        while not self.at("}"):
            inner_annotations = self.parse_annotations()
            if self.at("state"):
                states.append(self.parse_parser_state(inner_annotations))
            elif self.at("value_set"):
                locals_.append(self.parse_value_set())
            elif self.at("const"):
                locals_.append(self.parse_const())
            elif self.looks_like_instantiation():
                locals_.append(self.parse_instantiation(inner_annotations))
            else:
                locals_.append(self.parse_var_decl())
        self.expect("}")
        self.type_names.add(name)
        return A.ParserDecl(
            location=loc,
            name=name,
            type_params=type_params,
            params=params,
            locals=locals_,
            states=states,
            annotations=annotations,
        )

    def parse_value_set(self):
        loc = self.loc()
        self.expect("value_set")
        self.expect("<")
        element_type = self.parse_type()
        self.expect(">")
        self.expect("(")
        size_tok = self.expect_kind("INT")
        self.expect(")")
        name = self.expect_name()
        self.expect(";")
        return A.ValueSetDecl(
            location=loc, element_type=element_type, name=name, size=size_tok.value
        )

    def parse_parser_state(self, annotations):
        loc = self.loc()
        self.expect("state")
        name = self.expect_name()
        self.expect("{")
        statements = []
        transition = None
        while not self.at("}"):
            if self.at("transition"):
                transition = self.parse_transition()
                break
            statements.append(self.parse_statement())
        self.expect("}")
        return A.ParserState(
            location=loc,
            name=name,
            statements=statements,
            transition=transition,
            annotations=annotations,
        )

    def parse_transition(self):
        loc = self.loc()
        self.expect("transition")
        if self.at("select"):
            self.next()
            self.expect("(")
            exprs = [self.parse_expression()]
            while self.accept(","):
                exprs.append(self.parse_expression())
            self.expect(")")
            self.expect("{")
            cases = []
            while not self.at("}"):
                keyset = self.parse_keyset()
                self.expect(":")
                state = self.expect_state_name()
                self.expect(";")
                cases.append(A.SelectCase(keyset=keyset, state=state))
            self.expect("}")
            return A.Transition(location=loc, select_exprs=exprs, cases=cases)
        state = self.expect_state_name()
        self.expect(";")
        return A.Transition(location=loc, direct=state)

    def expect_state_name(self) -> str:
        tok = self.peek()
        if tok.kind == "ID" or tok.text in ("accept", "reject"):
            return self.next().text
        raise ParseError(f"expected state name, found {tok.text!r}", tok.location)

    def parse_keyset(self):
        loc = self.loc()
        if self.at("default"):
            self.next()
            return A.DefaultKeyset(location=loc)
        if self.at("_"):
            self.next()
            return A.DontCareKeyset(location=loc)
        if self.at("("):
            self.next()
            elements = [self.parse_simple_keyset()]
            while self.accept(","):
                elements.append(self.parse_simple_keyset())
            self.expect(")")
            if len(elements) == 1:
                return elements[0]
            return A.TupleKeyset(location=loc, elements=elements)
        return self.parse_simple_keyset()

    def parse_simple_keyset(self):
        loc = self.loc()
        if self.at("default"):
            self.next()
            return A.DefaultKeyset(location=loc)
        if self.at("_"):
            self.next()
            return A.DontCareKeyset(location=loc)
        expr = self.parse_expression()
        if self.accept("&&&"):
            mask = self.parse_expression()
            return A.MaskKeyset(location=loc, value=expr, mask=mask)
        if self.at(".") and self.peek(1).text == ".":
            self.next()
            self.next()
            hi = self.parse_expression()
            return A.RangeKeyset(location=loc, lo=expr, hi=hi)
        return A.ExprKeyset(location=loc, expr=expr)

    # ------------------------------------------------------------------
    # Controls, actions, tables
    # ------------------------------------------------------------------

    def parse_control(self, annotations):
        loc = self.loc()
        self.expect("control")
        name = self.expect_name()
        type_params = self._parse_type_params()
        params = self.parse_params()
        if self.accept(";"):
            return A.ControlTypeDecl(
                location=loc, name=name, type_params=type_params, params=params
            )
        self.expect("{")
        locals_ = []
        apply_body = None
        while not self.at("}"):
            inner_annotations = self.parse_annotations()
            if self.at("action"):
                locals_.append(self.parse_action(inner_annotations))
            elif self.at("table"):
                locals_.append(self.parse_table(inner_annotations))
            elif self.at("apply"):
                self.next()
                apply_body = self.parse_block()
            elif self.at("const"):
                locals_.append(self.parse_const())
            elif self.looks_like_instantiation():
                locals_.append(self.parse_instantiation(inner_annotations))
            else:
                locals_.append(self.parse_var_decl())
        self.expect("}")
        self.type_names.add(name)
        return A.ControlDecl(
            location=loc,
            name=name,
            type_params=type_params,
            params=params,
            locals=locals_,
            apply_body=apply_body or A.BlockStmt(statements=[]),
            annotations=annotations,
        )

    def parse_action(self, annotations):
        loc = self.loc()
        self.expect("action")
        name = self.expect_name()
        params = self.parse_params()
        body = self.parse_block()
        return A.ActionDecl(
            location=loc, name=name, params=params, body=body, annotations=annotations
        )

    def parse_table(self, annotations):
        loc = self.loc()
        self.expect("table")
        name = self.expect_name()
        self.expect("{")
        table = A.TableDecl(location=loc, name=name, annotations=annotations)
        while not self.at("}"):
            is_const = self.accept("const")
            prop_tok = self.peek()
            if prop_tok.text == "key":
                self.next()
                self.expect("=")
                self.expect("{")
                while not self.at("}"):
                    key_expr = self.parse_expression()
                    self.expect(":")
                    match_kind = self.expect_name()
                    key_annotations = self.parse_annotations()
                    self.expect(";")
                    table.keys.append(
                        A.TableKey(
                            expr=key_expr,
                            match_kind=match_kind,
                            annotations=key_annotations,
                        )
                    )
                self.expect("}")
            elif prop_tok.text == "actions":
                self.next()
                self.expect("=")
                self.expect("{")
                while not self.at("}"):
                    ref_annotations = self.parse_annotations()
                    ref = self.parse_action_ref()
                    ref.annotations = ref_annotations
                    self.expect(";")
                    table.actions.append(ref)
                self.expect("}")
            elif prop_tok.text == "default_action":
                self.next()
                self.expect("=")
                table.default_action = self.parse_action_ref()
                table.default_action_const = is_const
                self.expect(";")
            elif prop_tok.text == "entries":
                self.next()
                self.expect("=")
                self.expect("{")
                while not self.at("}"):
                    entry_annotations = self.parse_annotations()
                    keyset = self.parse_keyset()
                    self.expect(":")
                    action = self.parse_action_ref()
                    self.expect(";")
                    priority = None
                    for ann in entry_annotations:
                        if ann.name == "priority":
                            priority = ann.single_int()
                    table.entries.append(
                        A.TableEntry(
                            keyset=keyset,
                            action=action,
                            priority=priority,
                            annotations=entry_annotations,
                        )
                    )
                self.expect("}")
            elif prop_tok.text == "size":
                self.next()
                self.expect("=")
                size_expr = self.parse_expression()
                if isinstance(size_expr, A.IntLit):
                    table.size = size_expr.value
                self.expect(";")
            else:
                # Generic property: name = expr;
                pname = self.expect_name()
                self.expect("=")
                value = self.parse_expression()
                self.expect(";")
                table.properties.append(A.TableProperty(name=pname, value=value))
        self.expect("}")
        return table

    def parse_action_ref(self):
        loc = self.loc()
        name = self.expect_name()
        # Allow dotted global action names (".NoAction").
        while self.accept("."):
            name += "." + self.expect_name()
        args = []
        if self.accept("("):
            if not self.at(")"):
                args.append(self.parse_expression())
                while self.accept(","):
                    args.append(self.parse_expression())
            self.expect(")")
        return A.TableActionRef(location=loc, name=name, args=args)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_block(self):
        loc = self.loc()
        self.expect("{")
        statements = []
        while not self.at("}"):
            statements.append(self.parse_statement())
        self.expect("}")
        return A.BlockStmt(location=loc, statements=statements)

    def parse_var_decl(self):
        loc = self.loc()
        annotations = self.parse_annotations()
        vtype = self.parse_type()
        name = self.expect_name()
        init = None
        if self.accept("="):
            init = self.parse_expression()
        self.expect(";")
        return A.VarDeclStmt(
            location=loc, var_type=vtype, name=name, init=init, annotations=annotations
        )

    def parse_statement(self):
        loc = self.loc()
        tok = self.peek()
        text = tok.text
        if text == "{":
            return self.parse_block()
        if text == ";":
            self.next()
            return A.EmptyStmt(location=loc)
        if text == "if":
            self.next()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then_branch = self.parse_statement()
            else_branch = None
            if self.accept("else"):
                else_branch = self.parse_statement()
            return A.IfStmt(
                location=loc,
                condition=cond,
                then_branch=then_branch,
                else_branch=else_branch,
            )
        if text == "switch":
            return self.parse_switch()
        if text == "exit":
            self.next()
            self.expect(";")
            return A.ExitStmt(location=loc)
        if text == "return":
            self.next()
            value = None
            if not self.at(";"):
                value = self.parse_expression()
            self.expect(";")
            return A.ReturnStmt(location=loc, value=value)
        if text == "const":
            const = self.parse_const()
            return A.VarDeclStmt(
                location=const.location,
                var_type=const.const_type,
                name=const.name,
                init=const.value,
            )
        if text == "@" or (self.looks_like_type() and self.peek(1).kind == "ID"
                           and self.peek(2).text in (";", "=")):
            return self.parse_var_decl()
        # Special-case bit<N> declarations: "bit" "<" ...
        if text in ("bit", "int", "varbit", "bool", "tuple") or (
            tok.kind == "ID" and tok.text in self.type_names and self.peek(1).kind == "ID"
        ):
            return self.parse_var_decl()
        # Expression statement: assignment or call.
        expr = self.parse_expression()
        if self.peek().text in ("=", "+=", "-=", "|=", "&=", "^=", "<<=", ">>="):
            op = self.next().text
            value = self.parse_expression()
            self.expect(";")
            if op != "=":
                binop = {"+=": "+", "-=": "-", "|=": "|", "&=": "&",
                         "^=": "^", "<<=": "<<", ">>=": ">>"}[op]
                value = A.Binop(location=loc, op=binop, left=expr, right=value)
            return A.AssignStmt(location=loc, target=expr, value=value)
        self.expect(";")
        if isinstance(expr, A.Call):
            return A.MethodCallStmt(location=loc, call=expr)
        raise ParseError("expected assignment or call statement", loc)

    def parse_switch(self):
        loc = self.loc()
        self.expect("switch")
        self.expect("(")
        expr = self.parse_expression()
        self.expect(")")
        self.expect("{")
        cases = []
        while not self.at("}"):
            if self.accept("default"):
                label: object = "default"
            else:
                label = self.parse_expression()
            self.expect(":")
            body = None
            if self.at("{"):
                body = self.parse_block()
            cases.append(A.SwitchCase(label=label, body=body))
        self.expect("}")
        return A.SwitchStmt(location=loc, expression=expr, cases=cases)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    _PRECEDENCE = [
        ["||"],
        ["&&"],
        ["++"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    # Precedence level of "+"/"-" — the first level safe inside bit< >.
    _WIDTH_LEVEL = 9

    def parse_expression(self):
        return self.parse_ternary()

    def parse_width_expression(self):
        """Width expressions inside ``bit< >`` must not treat the closing
        ``>`` as a comparison; parse at a precedence level that excludes
        comparisons and shifts (parenthesize to use them)."""
        return self.parse_binary(self._WIDTH_LEVEL)

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            other = self.parse_expression()
            return A.Ternary(location=cond.location, cond=cond, then=then, other=other)
        return cond

    def parse_binary(self, level: int):
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = self._PRECEDENCE[level]
        while self.peek().text in ops:
            # Avoid consuming '>' that closes type args or select cases;
            # context where that matters is handled by callers.
            op = self.next().text
            right = self.parse_binary(level + 1)
            left = A.Binop(location=left.location, op=op, left=left, right=right)
        return left

    def parse_unary(self):
        loc = self.loc()
        tok = self.peek()
        if tok.text in ("!", "~", "-", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return A.Unop(location=loc, op=tok.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            if self.at(".") and not self.at(".", 1):
                # A lone '.' is member access; '..' is a range keyset and
                # is handled by parse_simple_keyset.
                self.next()
                member = self.expect_member_name()
                expr = A.Member(location=expr.location, expr=expr, member=member)
            elif self.at("["):
                self.next()
                index = self.parse_expression()
                if self.accept(":"):
                    lo = self.parse_expression()
                    self.expect("]")
                    expr = A.Slice(location=expr.location, expr=expr, hi=index, lo=lo)
                else:
                    self.expect("]")
                    expr = A.Index(location=expr.location, expr=expr, index=index)
            elif self.at("(") and isinstance(expr, (A.Ident, A.Member)):
                self.next()
                args = []
                if not self.at(")"):
                    args.append(self.parse_expression())
                    while self.accept(","):
                        args.append(self.parse_expression())
                self.expect(")")
                expr = A.Call(location=expr.location, func=expr, args=args)
            elif self.at("<") and isinstance(expr, (A.Ident, A.Member)) \
                    and self._angle_closes_as_type_args():
                self.next()
                type_args = [self.parse_type()]
                while self.accept(","):
                    type_args.append(self.parse_type())
                self.expect(">")
                self.expect("(")
                args = []
                if not self.at(")"):
                    args.append(self.parse_expression())
                    while self.accept(","):
                        args.append(self.parse_expression())
                self.expect(")")
                expr = A.Call(
                    location=expr.location, func=expr, type_args=type_args, args=args
                )
            else:
                return expr

    def expect_member_name(self) -> str:
        tok = self.peek()
        if tok.kind in ("ID", "KEYWORD"):
            return self.next().text
        raise ParseError(f"expected member name, found {tok.text!r}", tok.location)

    def parse_primary(self):
        loc = self.loc()
        tok = self.peek()
        if tok.kind == "INT":
            self.next()
            return A.IntLit(
                location=loc, value=tok.value, width=tok.width, signed=tok.signed
            )
        if tok.kind == "STRING":
            self.next()
            return A.StringLit(location=loc, value=tok.value)
        if tok.text == "true":
            self.next()
            return A.BoolLit(location=loc, value=True)
        if tok.text == "false":
            self.next()
            return A.BoolLit(location=loc, value=False)
        if tok.text == "error":
            # error.MemberName
            self.next()
            self.expect(".")
            member = self.expect_name()
            return A.Member(
                location=loc, expr=A.Ident(location=loc, name="error"), member=member
            )
        if tok.text == "(":
            self.next()
            # Cast: "(" type ")" unary-expression
            if self.looks_like_type() and self._paren_is_cast():
                target = self.parse_type()
                self.expect(")")
                operand = self.parse_unary()
                return A.Cast(location=loc, target=target, expr=operand)
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if tok.text == "{":
            self.next()
            elements = []
            if not self.at("}"):
                elements.append(self.parse_expression())
                while self.accept(","):
                    elements.append(self.parse_expression())
            self.expect("}")
            return A.TupleExpr(location=loc, elements=elements)
        if tok.kind == "ID" or tok.text in ("this",):
            self.next()
            return A.Ident(location=loc, name=tok.text)
        if tok.text == "_":
            self.next()
            return A.Ident(location=loc, name="_")
        raise ParseError(f"unexpected token {tok.text!r} in expression", loc)

    def _paren_is_cast(self) -> bool:
        """After '(' with a type-looking token: is this a cast?"""
        depth = 0
        i = 0
        while True:
            tok = self.peek(i)
            if tok.kind == "EOF":
                return False
            text = tok.text
            if text in ("(", "[", "<"):
                depth += 1
            elif text in (")", "]", ">"):
                if text == ")" and depth == 0:
                    after = self.peek(i + 1)
                    return (
                        after.kind in ("ID", "INT", "STRING")
                        or after.text in ("(", "!", "~", "-", "true", "false")
                    )
                depth -= 1
            elif depth == 0 and text in (";", "{", "}", ",", "+", "*", "/",
                                         "==", "!=", "&&", "||", "?"):
                return False
            i += 1
            if i > 30:
                return False


def parse_program(text: str, source: str = "<input>",
                  type_names: set[str] | None = None) -> A.Program:
    """Parse P4-16 source text into an AST program.

    ``type_names`` seeds the context-sensitive type-name set (used when
    a prelude was parsed separately and declared types the program
    refers to).
    """
    tokens, includes = tokenize(text, source)
    parser = Parser(tokens, source, type_names)
    program = parser.parse_program(includes)
    program.declared_type_names = set(parser.type_names)
    return program
