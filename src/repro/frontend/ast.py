"""Abstract syntax tree for the P4-16 subset.

Nodes are deliberately plain: the interesting semantic work happens in
``repro.ir.lower``, which resolves names, widths, and types.  Every
node carries a source location for diagnostics and an ``annotations``
list where the grammar allows them (``@name``, ``@priority``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SourceLocation

__all__ = [
    "Annotation", "Node", "Program",
    # types
    "TypeName", "BitTypeAst", "IntTypeAst", "VarbitTypeAst", "BoolTypeAst",
    "ErrorTypeAst", "VoidTypeAst", "TupleTypeAst", "StackTypeAst",
    "SpecializedTypeAst",
    # declarations
    "ConstDecl", "TypedefDecl", "HeaderDecl", "HeaderUnionDecl", "StructDecl",
    "StructField", "EnumDecl", "ErrorDecl", "MatchKindDecl", "ExternDecl",
    "ExternMethod", "Param", "ParserDecl", "ParserState", "ControlDecl",
    "ActionDecl", "TableDecl", "TableKey", "TableActionRef", "TableEntry",
    "TableProperty", "Instantiation", "ValueSetDecl", "FunctionDecl",
    "ParserTypeDecl", "ControlTypeDecl", "PackageDecl",
    # statements
    "Stmt", "BlockStmt", "AssignStmt", "MethodCallStmt", "IfStmt",
    "SwitchStmt", "SwitchCase", "ExitStmt", "ReturnStmt", "VarDeclStmt",
    "EmptyStmt",
    # parser bits
    "Transition", "SelectCase", "KeysetExpr", "DefaultKeyset", "DontCareKeyset",
    "MaskKeyset", "RangeKeyset", "TupleKeyset", "ExprKeyset",
    # expressions
    "Expr", "IntLit", "BoolLit", "StringLit", "Ident", "Member", "Index",
    "Slice", "Unop", "Binop", "Ternary", "Cast", "Call", "TupleExpr",
    "TypeExpr",
]


@dataclass
class Annotation:
    name: str
    args: list = field(default_factory=list)  # list[Expr] (or raw tokens)

    def single_string(self) -> Optional[str]:
        if len(self.args) == 1 and isinstance(self.args[0], StringLit):
            return self.args[0].value
        return None

    def single_int(self) -> Optional[int]:
        if len(self.args) == 1 and isinstance(self.args[0], IntLit):
            return self.args[0].value
        return None


@dataclass
class Node:
    location: Optional[SourceLocation] = field(default=None, repr=False, compare=False)


# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------

@dataclass
class TypeName(Node):
    name: str = ""


@dataclass
class BitTypeAst(Node):
    width: "Expr | int" = 0


@dataclass
class IntTypeAst(Node):
    width: "Expr | int" = 0


@dataclass
class VarbitTypeAst(Node):
    max_width: int = 0


@dataclass
class BoolTypeAst(Node):
    pass


@dataclass
class ErrorTypeAst(Node):
    pass


@dataclass
class VoidTypeAst(Node):
    pass


@dataclass
class TupleTypeAst(Node):
    elements: list = field(default_factory=list)


@dataclass
class StackTypeAst(Node):
    element: object = None  # type ast
    size: int = 0


@dataclass
class SpecializedTypeAst(Node):
    base: str = ""
    args: list = field(default_factory=list)  # type asts


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0
    width: Optional[int] = None  # None => infinite-precision literal
    signed: bool = False


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Member(Expr):
    expr: Expr = None
    member: str = ""


@dataclass
class Index(Expr):
    expr: Expr = None
    index: Expr = None


@dataclass
class Slice(Expr):
    expr: Expr = None
    hi: Expr = None
    lo: Expr = None


@dataclass
class Unop(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binop(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Cast(Expr):
    target: object = None  # type ast
    expr: Expr = None


@dataclass
class Call(Expr):
    func: Expr = None  # Ident or Member
    type_args: list = field(default_factory=list)
    args: list = field(default_factory=list)


@dataclass
class TupleExpr(Expr):
    elements: list = field(default_factory=list)


@dataclass
class TypeExpr(Expr):
    """A type used in expression position (e.g. error.NoError)."""
    type_ast: object = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class BlockStmt(Stmt):
    statements: list = field(default_factory=list)


@dataclass
class AssignStmt(Stmt):
    target: Expr = None
    value: Expr = None


@dataclass
class MethodCallStmt(Stmt):
    call: Call = None


@dataclass
class IfStmt(Stmt):
    condition: Expr = None
    then_branch: Stmt = None
    else_branch: Optional[Stmt] = None


@dataclass
class SwitchCase(Node):
    label: object = None  # Expr or "default"
    body: Optional[BlockStmt] = None  # None => fallthrough


@dataclass
class SwitchStmt(Stmt):
    expression: Expr = None
    cases: list = field(default_factory=list)


@dataclass
class ExitStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class VarDeclStmt(Stmt):
    var_type: object = None  # type ast
    name: str = ""
    init: Optional[Expr] = None
    annotations: list = field(default_factory=list)


@dataclass
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Parser constructs
# ---------------------------------------------------------------------------

@dataclass
class DefaultKeyset(Node):
    pass


@dataclass
class DontCareKeyset(Node):
    pass


@dataclass
class ExprKeyset(Node):
    expr: Expr = None


@dataclass
class MaskKeyset(Node):
    value: Expr = None
    mask: Expr = None


@dataclass
class RangeKeyset(Node):
    lo: Expr = None
    hi: Expr = None


@dataclass
class TupleKeyset(Node):
    elements: list = field(default_factory=list)


KeysetExpr = Union[
    DefaultKeyset, DontCareKeyset, ExprKeyset, MaskKeyset, RangeKeyset, TupleKeyset
]


@dataclass
class SelectCase(Node):
    keyset: object = None
    state: str = ""


@dataclass
class Transition(Node):
    """Either a direct transition (``select_exprs`` empty) or a select."""
    direct: Optional[str] = None
    select_exprs: list = field(default_factory=list)
    cases: list = field(default_factory=list)


@dataclass
class ParserState(Node):
    name: str = ""
    statements: list = field(default_factory=list)
    transition: Optional[Transition] = None
    annotations: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    direction: str = ""  # "", "in", "out", "inout"
    param_type: object = None
    name: str = ""
    default: Optional[Expr] = None
    annotations: list = field(default_factory=list)


@dataclass
class StructField(Node):
    field_type: object = None
    name: str = ""
    annotations: list = field(default_factory=list)


@dataclass
class ConstDecl(Node):
    const_type: object = None
    name: str = ""
    value: Expr = None


@dataclass
class TypedefDecl(Node):
    target: object = None
    name: str = ""


@dataclass
class HeaderDecl(Node):
    name: str = ""
    fields: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class HeaderUnionDecl(Node):
    name: str = ""
    fields: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class StructDecl(Node):
    name: str = ""
    fields: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class EnumDecl(Node):
    name: str = ""
    members: list = field(default_factory=list)  # list[str]
    underlying: Optional[object] = None  # type ast for serializable enums
    member_values: dict = field(default_factory=dict)


@dataclass
class ErrorDecl(Node):
    members: list = field(default_factory=list)


@dataclass
class MatchKindDecl(Node):
    members: list = field(default_factory=list)


@dataclass
class ExternMethod(Node):
    return_type: object = None
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)


@dataclass
class ExternDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    methods: list = field(default_factory=list)
    constructor_params: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class FunctionDecl(Node):
    """A top-level extern function declaration."""
    return_type: object = None
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)


@dataclass
class ValueSetDecl(Node):
    element_type: object = None
    name: str = ""
    size: int = 0


@dataclass
class ParserDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)
    locals: list = field(default_factory=list)
    states: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class ActionDecl(Node):
    name: str = ""
    params: list = field(default_factory=list)
    body: BlockStmt = None
    annotations: list = field(default_factory=list)


@dataclass
class TableKey(Node):
    expr: Expr = None
    match_kind: str = ""
    annotations: list = field(default_factory=list)

    @property
    def control_plane_name(self) -> str:
        for ann in self.annotations:
            if ann.name == "name":
                s = ann.single_string()
                if s:
                    return s
        return ""


@dataclass
class TableActionRef(Node):
    name: str = ""
    args: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class TableEntry(Node):
    keyset: object = None
    action: TableActionRef = None
    priority: Optional[int] = None
    annotations: list = field(default_factory=list)


@dataclass
class TableProperty(Node):
    name: str = ""
    value: object = None


@dataclass
class TableDecl(Node):
    name: str = ""
    keys: list = field(default_factory=list)
    actions: list = field(default_factory=list)
    default_action: Optional[TableActionRef] = None
    default_action_const: bool = False
    entries: list = field(default_factory=list)
    size: Optional[int] = None
    properties: list = field(default_factory=list)
    annotations: list = field(default_factory=list)


@dataclass
class ControlDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)
    locals: list = field(default_factory=list)
    apply_body: BlockStmt = None
    annotations: list = field(default_factory=list)


@dataclass
class Instantiation(Node):
    type_ast: object = None
    args: list = field(default_factory=list)
    name: str = ""
    annotations: list = field(default_factory=list)


@dataclass
class ParserTypeDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)


@dataclass
class ControlTypeDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)


@dataclass
class PackageDecl(Node):
    name: str = ""
    type_params: list = field(default_factory=list)
    params: list = field(default_factory=list)


@dataclass
class Program(Node):
    declarations: list = field(default_factory=list)
    includes: list = field(default_factory=list)
    source: str = "<input>"

    def find(self, cls, name: str):
        for d in self.declarations:
            if isinstance(d, cls) and getattr(d, "name", None) == name:
                return d
        return None

    def all(self, cls):
        return [d for d in self.declarations if isinstance(d, cls)]
