"""Lexer for the P4-16 subset.

Handles the preprocessor lines we need (``#include`` of the standard
architecture headers is recorded and satisfied from built-in
declarations; simple object-like ``#define`` macros are substituted),
strips comments, and produces a token stream with source locations.

P4 integer literal forms supported::

    123         arbitrary-precision (infint)
    0x1F 0b101 0o17
    8w255       width-annotated unsigned
    8s-3        width-annotated signed
"""

from __future__ import annotations

import re

from .errors import LexError, SourceLocation

__all__ = ["Token", "tokenize", "KEYWORDS"]

# Hard keywords; contextual words like "size", "key", "actions",
# "entries", "default_action", "state", "type", and "apply" stay plain
# identifiers (the parser matches them by text), so they remain usable
# as field and parameter names, as in real P4.
KEYWORDS = {
    "action", "bit", "bool", "const", "control",
    "default", "else", "enum", "error",
    "exit", "extern", "false", "header", "header_union", "if", "in",
    "inout", "int", "match_kind", "out", "package", "parser",
    "return", "select", "struct", "switch", "table",
    "transition", "true", "tuple", "typedef", "value_set",
    "varbit", "void", "this",
}

# Multi-character operators, longest first.
_OPERATORS = [
    "&&&", "<<=", ">>=",
    "++", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=",
    "|=", "&=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", ":", "?", "@",
]

_TOKEN_KINDS = ("ID", "KEYWORD", "INT", "STRING", "OP", "EOF")


class Token:
    __slots__ = ("kind", "text", "value", "width", "signed", "location")

    def __init__(self, kind, text, location, value=None, width=None, signed=False):
        self.kind = kind
        self.text = text
        self.value = value
        self.width = width
        self.signed = signed
        self.location = location

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


_INT_RE = re.compile(
    r"(?:(?P<width>\d+)(?P<sign>[ws]))?"
    r"(?P<body>0[xX][0-9a-fA-F_]+|0[bB][01_]+|0[oO][0-7_]+|0[dD][0-9_]+|[0-9][0-9_]*)"
)
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_WS_RE = re.compile(r"[ \t\r]+")
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def _parse_int_body(body: str) -> int:
    body = body.replace("_", "")
    if body[:2] in ("0x", "0X"):
        return int(body, 16)
    if body[:2] in ("0b", "0B"):
        return int(body, 2)
    if body[:2] in ("0o", "0O"):
        return int(body[2:], 8)
    if body[:2] in ("0d", "0D"):
        return int(body[2:], 10)
    return int(body, 10)


def _strip_comments(text: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                raise LexError("unterminated block comment")
            segment = text[i : j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in segment))
            i = j + 2
        elif c == '"':
            m = _STRING_RE.match(text, i)
            if not m:
                raise LexError("unterminated string literal")
            out.append(m.group(0))
            i = m.end()
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _preprocess(text: str, source: str) -> tuple[str, list[str]]:
    """Strip preprocessor lines; return (text, list of included names).

    Supports ``#include <name>`` / ``#include "name"`` (recorded, not
    expanded — the parser provides built-in declarations for the
    standard architecture headers) and object-like ``#define NAME value``.
    Conditional blocks (#if/#ifdef/#endif) keep the "true" branch of
    ``#if 1``/``#ifndef`` of undefined names and drop the rest; full CPP
    semantics are out of scope.
    """
    includes: list[str] = []
    defines: dict[str, str] = {}
    out_lines: list[str] = []
    skip_depth = 0
    for line in text.split("\n"):
        stripped = line.strip()
        if stripped.startswith("#"):
            directive = stripped[1:].strip()
            if directive.startswith("include"):
                m = re.search(r'[<"]([^>"]+)[>"]', directive)
                if m:
                    includes.append(m.group(1))
            elif directive.startswith("define"):
                parts = directive[len("define") :].strip().split(None, 1)
                if parts and "(" not in parts[0]:
                    defines[parts[0]] = parts[1] if len(parts) > 1 else ""
            elif directive.startswith(("ifdef",)):
                name = directive.split(None, 1)[1].strip() if " " in directive else ""
                if name not in defines:
                    skip_depth += 1
                else:
                    out_lines.append("")
                    continue
            elif directive.startswith("ifndef"):
                name = directive.split(None, 1)[1].strip() if " " in directive else ""
                if name in defines:
                    skip_depth += 1
                else:
                    out_lines.append("")
                    continue
            elif directive.startswith("if"):
                cond = directive[2:].strip()
                if cond not in ("1", "true"):
                    skip_depth += 1
                else:
                    out_lines.append("")
                    continue
            elif directive.startswith(("endif", "else", "elif")):
                if directive.startswith("endif") and skip_depth:
                    skip_depth -= 1
            out_lines.append("")  # keep line numbering stable
            continue
        if skip_depth:
            out_lines.append("")
            continue
        out_lines.append(line)
    body = "\n".join(out_lines)
    # Object-like macro substitution (token-boundary aware).
    for name, value in defines.items():
        body = re.sub(rf"\b{re.escape(name)}\b", value, body)
    return body, includes


def tokenize(text: str, source: str = "<input>") -> tuple[list[Token], list[str]]:
    """Tokenize P4 source; returns (tokens, included header names)."""
    body, includes = _preprocess(text, source)
    body = _strip_comments(body)

    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(body)
    while i < n:
        c = body[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        m = _WS_RE.match(body, i)
        if m:
            col += m.end() - i
            i = m.end()
            continue
        loc = SourceLocation(source, line, col)
        if c == '"':
            m = _STRING_RE.match(body, i)
            if not m:
                raise LexError("unterminated string", loc)
            raw = m.group(0)
            tokens.append(Token("STRING", raw, loc, value=raw[1:-1]))
            col += m.end() - i
            i = m.end()
            continue
        if c.isdigit():
            m = _INT_RE.match(body, i)
            if not m:
                raise LexError(f"bad integer literal near {body[i:i+10]!r}", loc)
            width = m.group("width")
            sign = m.group("sign")
            value = _parse_int_body(m.group("body"))
            tok = Token(
                "INT",
                m.group(0),
                loc,
                value=value,
                width=int(width) if width else None,
                signed=(sign == "s"),
            )
            tokens.append(tok)
            col += m.end() - i
            i = m.end()
            continue
        m = _ID_RE.match(body, i)
        if m:
            word = m.group(0)
            kind = "KEYWORD" if word in KEYWORDS else "ID"
            tokens.append(Token(kind, word, loc))
            col += m.end() - i
            i = m.end()
            continue
        for op in _OPERATORS:
            if body.startswith(op, i):
                tokens.append(Token("OP", op, loc))
                col += len(op)
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {c!r}", loc)
    tokens.append(Token("EOF", "", SourceLocation(source, line, col)))
    return tokens, includes
