"""P4-16 front end: lexer, parser, AST, and resolved types.

This subpackage stands in for the P4C front end the paper builds on.
Typical use::

    from repro.frontend import parse_program
    program_ast = parse_program(p4_source_text)
"""

from .errors import LexError, P4Error, ParseError, TypeError_
from .lexer import tokenize
from .parser import parse_program

__all__ = [
    "parse_program",
    "tokenize",
    "P4Error",
    "LexError",
    "ParseError",
    "TypeError_",
]
