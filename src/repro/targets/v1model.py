"""The v1model (BMv2 simple_switch) target extension (paper §6.1.1).

Pipeline: Parser -> VerifyChecksum -> Ingress -> [traffic manager] ->
Egress -> ComputeChecksum -> Deparser -> output.

BMv2 quirks modeled (App. A.1):
- uninitialized variables read as 0/false (not tainted);
- the drop port is 511; ``mark_to_drop`` sets egress_spec to it;
- a parser error does not drop the packet: the offending header stays
  invalid and execution skips to ingress, with
  ``standard_metadata.parser_error`` set;
- ``recirculate``/``resubmit`` re-run the pipeline with metadata reset
  (bounded recirculation);
- ``clone`` duplicates the packet (session chosen by the control
  plane);
- const-entry evaluation honours the ``@priority`` annotation;
- checksum externs are modeled concolically (§5.4).
"""

from __future__ import annotations

from ..externs.checksum import CHECKSUM_ALGORITHMS, ones_complement16
from ..frontend.types import StructType
from ..ir import nodes as N
from ..smt import terms as T
from ..symex.state import ConcolicBinding, ExecutionState, RegisterDecision
from ..symex.value import SymVal, fresh_tainted, fresh_var, sym_bool, sym_const
from .base import Preconditions, TargetExtension

__all__ = ["V1Model"]

DROP_PORT = 511

# Canonical storage prefixes for the pipeline state (paper Fig. 3).
HDR = "*hdr"
META = "*meta"
SM = "*sm"


class V1Model(TargetExtension):
    NAME = "v1model"
    ARCH_INCLUDE = "v1model.p4"
    # BMv2 initializes everything to zero (App. A.1), so locals and
    # uninitialized reads are deterministic.
    local_init_mode = "zero"

    def uninitialized_value(self, state, path, width):
        return sym_const(0, width) if width else sym_bool(False)

    def parser_error_path(self) -> str:
        return f"{SM}.parser_error"

    # ==================================================================
    # Pipeline template
    # ==================================================================

    def build_initial_state(self, program: N.IrProgram) -> ExecutionState:
        if len(program.bindings) != 6 or program.package_name != "V1Switch":
            raise ValueError("v1model requires a V1Switch(main) program")
        state = ExecutionState(program, self)
        parser = program.parsers[program.bindings[0].decl_name]
        hdr_type = parser.params[1].p4_type
        meta_type = parser.params[2].p4_type
        sm_type = program.structs["standard_metadata_t"]
        state.props["hdr_type"] = hdr_type
        state.props["meta_type"] = meta_type
        state.props["sm_type"] = sm_type
        state.init_type(HDR, hdr_type, "invalid")
        state.init_type(META, meta_type, "zero")
        state.init_type(SM, sm_type, "zero")

        in_port = fresh_var("*in_port", 9)
        state.write(f"{SM}.ingress_port", in_port)
        state.props["input_port_term"] = in_port.term
        state.add_constraint(T.ult(in_port.term, T.bv_const(DROP_PORT, 9)))
        pkt_len_bytes = T.bv_lshr(state.packet.pkt_len, T.bv_const(3, 32))
        state.write(f"{SM}.packet_length", SymVal(pkt_len_bytes, 0))

        self._apply_preconditions(state, program)
        self._queue_pipeline(state, program)
        return state

    def _apply_preconditions(self, state, program) -> None:
        pre = self.preconditions
        pkt_len = state.packet.pkt_len
        if pre.byte_aligned:
            state.add_constraint(
                T.eq(
                    T.bv_and(pkt_len, T.bv_const(7, 32)),
                    T.bv_const(0, 32),
                )
            )
        if pre.fixed_packet_size_bytes is not None:
            state.add_constraint(
                T.eq(pkt_len, T.bv_const(pre.fixed_packet_size_bytes * 8, 32))
            )
        else:
            state.add_constraint(
                T.ule(pkt_len, T.bv_const(pre.max_packet_bytes * 8, 32))
            )
        # P4-constraints are applied per-table at entry-synthesis time
        # via the entry_constraints hook in the base class.

    def _queue_pipeline(self, state: ExecutionState, program) -> None:
        b = program.bindings
        # Stack: push in reverse execution order.
        state.push_work(self._finish)
        state.push_work(self._run_deparser_cb(b[5].decl_name))
        state.push_work(self._run_control_cb(b[4].decl_name))      # compute ck
        state.push_work(self._run_egress_cb(b[3].decl_name))
        state.push_work(self._traffic_manager)
        state.push_work(self._run_control_cb(b[2].decl_name, sm=True))  # ingress
        state.push_work(self._run_control_cb(b[1].decl_name))      # verify ck
        state.push_work(self._run_parser_cb(b[0].decl_name))

    # -- block runners ----------------------------------------------------

    def _run_parser_cb(self, name: str):
        def run(state: ExecutionState):
            parser = state.program.parsers[name]
            paths = [None, HDR, META, SM][: len(parser.params)]
            self.enter_parser(state, name, paths)
            return [state]

        return run

    def _run_control_cb(self, name: str, sm: bool = False):
        def run(state: ExecutionState):
            control = state.program.controls[name]
            paths = [HDR, META] + ([SM] if len(control.params) > 2 else [])
            self.enter_control(state, name, paths[: len(control.params)])
            return [state]

        return run

    def _run_egress_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped"):
                return [state]  # TM dropped: skip egress entirely
            control = state.program.controls[name]
            paths = [HDR, META, SM][: len(control.params)]
            self.enter_control(state, name, paths)
            return [state]

        return run

    def _run_deparser_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped"):
                return [state]
            control = state.program.controls[name]
            paths = [None, HDR][: len(control.params)]
            self.enter_control(state, name, paths)
            state_marker = self._commit_deparse
            # commit after deparser finishes: insert below the control's
            # work by pushing first.  (enter_control pushed on top, so
            # re-push marker beneath by rotating.)
            # Simpler: append commit to run after ExitMarker pops.
            return [state]

        def run_and_commit(state: ExecutionState):
            state.push_work(self._commit_deparse)
            return run(state)

        return run_and_commit

    def _commit_deparse(self, state: ExecutionState):
        if not state.props.get("dropped"):
            state.packet.commit_emit()
        return [state]

    # -- traffic manager ----------------------------------------------------

    def _traffic_manager(self, state: ExecutionState):
        program = state.program
        # Resubmit: back to ingress (after parser) with original headers.
        if state.props.pop("resubmit_requested", False):
            count = state.props.get("recirc_count", 0)
            if count < self.MAX_RECIRCULATIONS:
                state.props["recirc_count"] = count + 1
                state.log("traffic manager: resubmit")
                b = program.bindings
                state.push_work(self._traffic_manager)
                state.push_work(self._run_control_cb(b[2].decl_name, sm=True))
                return [state]
        # Multicast is out of scope for the reproduction (documented in
        # DESIGN.md): packets with a nonzero mcast_grp would be
        # replicated by the TM.  We constrain the group to 0 so every
        # emitted test is deterministic; programs that hard-code a
        # nonzero group produce no (flaky) tests, mirroring §5.3.
        mcast = state.read(f"{SM}.mcast_grp", 16)
        if mcast.term.is_const and mcast.term.value != 0:
            state.blocked_reason = "multicast replication unsupported"
            state.work.clear()
            state.finished = True
            return [state]
        if not mcast.term.is_const and not mcast.is_tainted:
            if not state.add_constraint(T.eq(mcast.term, T.bv_const(0, 16))):
                return []
        egress_spec = state.read(f"{SM}.egress_spec", 9)
        if egress_spec.is_tainted:
            # Unpredictable forwarding decision: the generated test
            # would be flaky -> drop the test (§5.3).
            state.blocked_reason = "tainted egress_spec"
            state.work.clear()
            state.finished = True
            return [state]
        if egress_spec.term.is_const:
            if egress_spec.term.value == DROP_PORT:
                state.props["dropped"] = True
                state.log("traffic manager: drop")
            else:
                state.write(f"{SM}.egress_port", egress_spec)
            return [state]
        drop_branch = state.clone()
        cond = T.eq(egress_spec.term, T.bv_const(DROP_PORT, 9))
        if drop_branch.add_constraint(cond):
            drop_branch.props["dropped"] = True
            drop_branch.log("traffic manager: drop")
        forward = state
        ok = forward.add_constraint(T.not_(cond))
        forward.write(f"{SM}.egress_port", egress_spec)
        out = [drop_branch]
        if ok:
            out.append(forward)
        return out

    # -- end of pipeline -----------------------------------------------------

    def _finish(self, state: ExecutionState):
        # Recirculate at the end of egress if requested.
        if state.props.pop("recirculate_requested", False) and \
                not state.props.get("dropped"):
            count = state.props.get("recirc_count", 0)
            if count < self.MAX_RECIRCULATIONS:
                state.props["recirc_count"] = count + 1
                state.log("recirculate: packet re-enters the parser")
                sm_type = state.props["sm_type"]
                state.init_type(SM, sm_type, "zero")
                in_port = state.read(f"{SM}.ingress_port", 9)
                self._queue_pipeline(state, state.program)
                return [state]
        if not state.props.get("dropped"):
            port = state.read(f"{SM}.egress_port", 9)
            if port.is_tainted:
                state.blocked_reason = "tainted egress_port"
            else:
                pkt_val = state.packet.live_value()
                state.output_packets.append((port, pkt_val))
        # Cloned outputs (see clone extern).
        for port, pkt_val in state.props.get("clone_outputs", []):
            state.output_packets.append((port, pkt_val))
        state.finished = True
        state.work.clear()
        return [state]

    # ==================================================================
    # Const-entry priority (App. A.1)
    # ==================================================================

    def order_const_entries(self, table: N.IrTable) -> list:
        entries = list(table.const_entries)
        if any(e.priority is not None for e in entries):
            entries.sort(
                key=lambda e: (e.priority if e.priority is not None else 1 << 30)
            )
        return entries

    # ==================================================================
    # Externs
    # ==================================================================

    def _register_externs(self) -> None:
        self._extern_impls.update(
            {
                "mark_to_drop": self._ext_mark_to_drop,
                "verify_checksum": self._ext_verify_checksum,
                "update_checksum": self._ext_update_checksum,
                "verify_checksum_with_payload": self._ext_verify_checksum,
                "update_checksum_with_payload": self._ext_update_checksum,
                "random": self._ext_random,
                "hash": self._ext_hash,
                "digest": self._ext_noop,
                "log_msg": self._ext_noop,
                "truncate": self._ext_truncate,
                "clone": self._ext_clone,
                "clone_preserving_field_list": self._ext_clone,
                "resubmit_preserving_field_list": self._ext_resubmit,
                "recirculate_preserving_field_list": self._ext_recirculate,
                "register.read": self._ext_register_read,
                "register.write": self._ext_register_write,
                "counter.count": self._ext_noop,
                "direct_counter.count": self._ext_noop,
                "meter.execute_meter": self._ext_meter,
                "direct_meter.read": self._ext_meter_direct,
                "assert": self._ext_assert,
                "assume": self._ext_assert,
                "verify": self._ext_verify,
            }
        )

    # -- simple ones -------------------------------------------------------

    def _ext_noop(self, state, call):
        return [state]

    def _ext_mark_to_drop(self, state, call):
        state.write(f"{SM}.egress_spec", sym_const(DROP_PORT, 9))
        state.write(f"{SM}.mcast_grp", sym_const(0, 16))
        state.log("mark_to_drop")
        return [state]

    def _ext_truncate(self, state, call):
        from ..symex.stepper import eval_expr

        amount = eval_expr(state, call.args[0])
        if amount.term.is_const:
            state.packet.truncate_live(amount.term.value * 8)
            state.props["truncated"] = True
        return [state]

    def _ext_assert(self, state, call):
        from ..symex.stepper import eval_expr

        cond = eval_expr(state, call.args[0])
        # Model BMv2 semantics: executing assert(false) aborts the
        # target; P4Testgen only follows the passing branch.
        if not state.add_constraint(cond.term):
            state.finished = True
            state.work.clear()
            state.blocked_reason = "assert(false)"
        return [state]

    def _ext_verify(self, state, call):
        from ..symex.stepper import eval_expr

        cond = eval_expr(state, call.args[0])
        err = eval_expr(state, call.args[1])
        ok_branch = state.clone()
        fail_branch = state
        out = []
        if ok_branch.add_constraint(cond.term):
            out.append(ok_branch)
        if fail_branch.add_constraint(T.not_(cond.term)):
            if err.term.is_const:
                code = state.program.errors[err.term.value] \
                    if err.term.value < len(state.program.errors) else "NoMatch"
                self.set_parser_error(fail_branch, code)
            self._jump_to_reject(fail_branch)
            out.append(fail_branch)
        return out

    # -- randomness / metering: tainted (unpredictable) ---------------------

    def _ext_random(self, state, call):
        from ..symex.stepper import resolve_lvalue

        lv = call.args[0]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = resolve_lvalue(state, lv)
        state.write(path, fresh_tainted("random", p4_type.bit_width()))
        state.log("random: output tainted")
        return [state]

    def _ext_meter(self, state, call):
        from ..symex.stepper import resolve_lvalue

        lv = call.args[1]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = resolve_lvalue(state, lv)
        # Rapid prototyping via taint (§5.3): meter color unpredictable.
        state.write(path, fresh_tainted("meter", p4_type.bit_width()))
        return [state]

    def _ext_meter_direct(self, state, call):
        from ..symex.stepper import resolve_lvalue

        lv = call.args[0]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = resolve_lvalue(state, lv)
        state.write(path, fresh_tainted("meter", p4_type.bit_width()))
        return [state]

    # -- registers -----------------------------------------------------------

    def _ext_register_read(self, state, call):
        from ..symex.stepper import eval_expr, resolve_lvalue

        out_lv = call.args[0]
        if isinstance(out_lv, N.IrLValExpr):
            out_lv = out_lv.lval
        path, p4_type = resolve_lvalue(state, out_lv)
        index = eval_expr(state, call.args[1])
        width = p4_type.bit_width()
        written = state.props.get(("register", call.obj), {})
        if index.term.is_const and index.term.value in written:
            state.write(path, written[index.term.value])
            return [state]
        if index.term.is_const:
            if not self.backend_caps.registers:
                # The test framework cannot initialize registers (§6,
                # e.g. STF): the cell holds the target default of 0,
                # and register-value-dependent paths are not explored.
                state.write(path, sym_const(0, width))
                return [state]
            # Control-plane-initialized cell: symbolic var + CP record.
            var = fresh_var(f"{call.obj}[{index.term.value}]", width)
            state.cp_decisions.append(
                RegisterDecision(call.obj, index.term.value, var.term)
            )
            state.write(path, var)
            return [state]
        # Symbolic index: value unpredictable without enumerating cells.
        state.write(path, fresh_tainted(f"{call.obj}[?]", width))
        return [state]

    def _ext_register_write(self, state, call):
        from ..symex.stepper import eval_expr

        index = eval_expr(state, call.args[0])
        value = eval_expr(state, call.args[1])
        if index.term.is_const:
            regs = dict(state.props.get(("register", call.obj), {}))
            regs[index.term.value] = value
            state.props[("register", call.obj)] = regs
        return [state]

    # -- checksums / hashes (concolic, §5.4) ---------------------------------

    def _data_terms(self, state, data_arg):
        from ..symex.stepper import eval_expr, resolve_lvalue
        from ..frontend.types import HeaderType, StructType as ST

        terms = []
        if isinstance(data_arg, N.IrTupleExpr):
            elements = data_arg.elements
        else:
            elements = (data_arg,)
        for e in elements:
            if isinstance(e, N.IrTupleExpr):
                terms.extend(self._data_terms(state, e))
                continue
            if isinstance(e, N.IrLValExpr) and isinstance(
                e.p4_type, (HeaderType, ST)
            ):
                path, t = resolve_lvalue(state, e.lval)
                for fname, ftype in t.fields:
                    terms.append(
                        state.read(f"{path}.{fname}", ftype.bit_width()).term
                    )
                continue
            terms.append(eval_expr(state, e).term)
        return terms

    def _algo_name(self, state, algo_arg) -> str:
        from ..symex.stepper import eval_expr

        try:
            val = eval_expr(state, algo_arg)
        except Exception:
            return "csum16"
        if val.term.is_const:
            enum = state.program.enums.get("HashAlgorithm")
            if enum is not None:
                for member, value in enum.values.items():
                    if value == val.term.value:
                        return member
        return "csum16"

    def _ext_verify_checksum(self, state, call):
        """verify_checksum(condition, data, checksum, algo): on mismatch
        BMv2 sets standard_metadata.checksum_error (§3 example 2)."""
        from ..symex.stepper import eval_expr

        cond = eval_expr(state, call.args[0])
        checksum = eval_expr(state, call.args[2])
        algo = self._algo_name(state, call.args[3]) if len(call.args) > 3 else "csum16"
        concrete_fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        width = checksum.term.width

        out = []
        # Branch A: condition false -> no checksum performed.
        if not (cond.term.is_const and cond.term.payload):
            skip = state.clone()
            if skip.add_constraint(T.not_(cond.term)):
                skip.log("verify_checksum: condition false")
                out.append(skip)
        if cond.term.is_const and not cond.term.payload:
            return out or [state]

        data_terms = self._data_terms(state, call.args[1])
        computed = fresh_var("csum", width)

        def make_binding():
            return ConcolicBinding(
                var=computed.term,
                func=f"checksum:{algo}",
                arg_terms=data_terms,
                concrete_fn=lambda values, _fn=concrete_fn, _ts=data_terms, _w=width:
                    _fn(list(zip([t.width for t in _ts], values)), _w),
            )

        # Branch B: checksum matches -> no error.
        good = state.clone()
        okb = good.add_constraint(cond.term)
        okb = good.add_constraint(T.eq(computed.term, checksum.term)) and okb
        if okb:
            binding = make_binding()
            # Domain-specific fallback (§5.4): if binding the concrete
            # checksum contradicts the path, force the reference value
            # to equal the computed checksum instead of retrying.
            binding.fallback = lambda b, _cs=checksum.term: [
                T.eq(b.var, _cs)
            ]
            good.concolics.append(binding)
            good.log(f"verify_checksum[{algo}]: match")
            out.append(good)

        # Branch C: mismatch -> checksum_error = 1.
        bad = state
        okc = bad.add_constraint(cond.term)
        okc = bad.add_constraint(T.ne(computed.term, checksum.term)) and okc
        if okc:
            bad.concolics.append(make_binding())
            bad.write(f"{SM}.checksum_error", sym_const(1, 1))
            bad.log(f"verify_checksum[{algo}]: mismatch")
            out.append(bad)
        return out

    def _ext_update_checksum(self, state, call):
        from ..symex.stepper import eval_expr, resolve_lvalue

        cond = eval_expr(state, call.args[0])
        dest = call.args[2]
        if isinstance(dest, N.IrLValExpr):
            dest = dest.lval
        path, p4_type = resolve_lvalue(state, dest)
        width = p4_type.bit_width()
        algo = self._algo_name(state, call.args[3]) if len(call.args) > 3 else "csum16"
        concrete_fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        data_terms = self._data_terms(state, call.args[1])
        computed = fresh_var("csum_upd", width)
        binding = ConcolicBinding(
            var=computed.term,
            func=f"checksum:{algo}",
            arg_terms=data_terms,
            concrete_fn=lambda values, _fn=concrete_fn, _ts=data_terms, _w=width:
                _fn(list(zip([t.width for t in _ts], values)), _w),
        )
        out = []
        if cond.term.is_const:
            if cond.term.payload:
                state.concolics.append(binding)
                state.write(path, SymVal(computed.term, 0))
            return [state]
        do = state.clone()
        if do.add_constraint(cond.term):
            do.concolics.append(binding)
            do.write(path, SymVal(computed.term, 0))
            out.append(do)
        skip = state
        if skip.add_constraint(T.not_(cond.term)):
            out.append(skip)
        return out

    def _ext_hash(self, state, call):
        """hash(out result, algo, base, data, max): result = base +
        (H(data) mod max)."""
        from ..symex.stepper import eval_expr, resolve_lvalue

        out_lv = call.args[0]
        if isinstance(out_lv, N.IrLValExpr):
            out_lv = out_lv.lval
        path, p4_type = resolve_lvalue(state, out_lv)
        width = p4_type.bit_width()
        algo = self._algo_name(state, call.args[1])
        concrete_fn = CHECKSUM_ALGORITHMS.get(algo, ones_complement16)
        base = eval_expr(state, call.args[2])
        data_terms = self._data_terms(state, call.args[3])
        max_val = eval_expr(state, call.args[4])
        hvar = fresh_var("hash", width)

        def concrete(values, _fn=concrete_fn, _ts=data_terms, _w=width):
            return _fn(list(zip([t.width for t in _ts], values)), _w)

        state.concolics.append(
            ConcolicBinding(
                var=hvar.term, func=f"hash:{algo}", arg_terms=data_terms,
                concrete_fn=concrete,
            )
        )
        base_t = base.term
        max_t = max_val.term
        if base_t.width != width:
            base_t = T.zero_extend(base_t, width - base_t.width) \
                if base_t.width < width else T.extract(base_t, width - 1, 0)
        if max_t.width != width:
            max_t = T.zero_extend(max_t, width - max_t.width) \
                if max_t.width < width else T.extract(max_t, width - 1, 0)
        result = T.bv_add(base_t, T.bv_urem(hvar.term, max_t))
        state.write(path, SymVal(result, 0))
        return [state]

    # -- packet path externs ---------------------------------------------------

    def _ext_resubmit(self, state, call):
        state.props["resubmit_requested"] = True
        state.log("resubmit requested")
        return [state]

    def _ext_recirculate(self, state, call):
        state.props["recirculate_requested"] = True
        state.log("recirculate requested")
        return [state]

    def _ext_clone(self, state, call):
        """clone(type, session): duplicate the packet into egress.

        Modeled as an extra expected output whose port is chosen by the
        control plane (clone-session configuration).  The cloned
        content is the post-parser packet for I2E and the deparsed
        packet for E2E; re-running the egress control for the clone is
        approximated by emitting the current header state (documented
        substitution in DESIGN.md).
        """
        # The clone session's egress port is control-plane configuration;
        # our simulators model the default session mapping to port 0, so
        # the oracle pins the same value (a richer mirror-session API
        # would make this a CP decision like table entries).
        clone_port = SymVal(T.bv_const(0, 9), 0)
        pkt_val = state.packet.live_value()
        outs = list(state.props.get("clone_outputs", []))
        outs.append((clone_port, pkt_val))
        state.props["clone_outputs"] = outs
        state.log("clone session requested")
        return [state]

    # ==================================================================
    # Parser error policy (App. A.1): do not drop; skip to ingress.
    # ==================================================================

    def on_extract_failure(self, state, path, header_type) -> None:
        self.set_parser_error(state, "PacketTooShort")
        if header_type is not None:
            state.write_valid(path, sym_bool(False))
        self._jump_to_reject(state)

    def on_parser_reject(self, state, parser) -> list:
        # BMv2 continues to ingress with the failed header invalid.
        state.log("parser reject: continuing to ingress (BMv2 semantics)")
        # Unwind the remaining parser work (up to this parser's frame).
        return [state]
