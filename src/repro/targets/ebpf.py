"""The ebpf_model target extension (paper §6.1.3).

The simplest architecture: a parser and a ``filter`` control, no
deparser.  The kernel target accepts or drops the packet based on the
filter's ``accept`` out-parameter.  Because there is no deparser, the
extension models *implicit deparsing*: it walks the header structure in
declaration order and re-emits every valid header (exactly the helper
the paper describes), followed by the unparsed payload.

eBPF quirks (App. A.1):
- a failing extract/advance drops the packet in the kernel;
- extract/advance do not change the size of the outgoing packet (the
  kernel re-emits the original bytes unless headers were rewritten);
- there is no recirculation or cloning.
"""

from __future__ import annotations

from ..frontend.types import HeaderType, StackType, StructType
from ..ir import nodes as N
from ..smt import terms as T
from ..symex.state import ExecutionState
from ..symex.value import SymVal, fresh_var, sym_bool, sym_const
from .base import TargetExtension

__all__ = ["EbpfModel"]

HDR = "*hdr"
ACCEPT = "*accept"


class EbpfModel(TargetExtension):
    NAME = "ebpf_model"
    ARCH_INCLUDE = "ebpf_model.p4"
    local_init_mode = "zero"

    def uninitialized_value(self, state, path, width):
        return sym_const(0, width) if width else sym_bool(False)

    # ==================================================================
    # Pipeline: parser -> filter -> implicit deparser
    # ==================================================================

    def build_initial_state(self, program: N.IrProgram) -> ExecutionState:
        if program.package_name != "ebpfFilter" or len(program.bindings) != 2:
            raise ValueError("ebpf_model requires an ebpfFilter(main) program")
        state = ExecutionState(program, self)
        parser = program.parsers[program.bindings[0].decl_name]
        hdr_type = parser.params[1].p4_type
        state.props["hdr_type"] = hdr_type
        state.init_type(HDR, hdr_type, "invalid")
        # eBPF has a single interface pair; ports are indexes the
        # kernel hook sees.  We model a symbolic input port.
        in_port = fresh_var("*in_port", 9)
        state.props["input_port_term"] = in_port.term
        state.env[ACCEPT] = sym_bool(False)

        pkt_len = state.packet.pkt_len
        if self.preconditions.byte_aligned:
            state.add_constraint(
                T.eq(T.bv_and(pkt_len, T.bv_const(7, 32)), T.bv_const(0, 32))
            )
        if self.preconditions.fixed_packet_size_bytes is not None:
            state.add_constraint(
                T.eq(
                    pkt_len,
                    T.bv_const(self.preconditions.fixed_packet_size_bytes * 8, 32),
                )
            )
        else:
            state.add_constraint(
                T.ule(pkt_len, T.bv_const(self.preconditions.max_packet_bytes * 8, 32))
            )

        state.push_work(self._finish)
        state.push_work(self._run_filter_cb(program.bindings[1].decl_name))
        state.push_work(self._run_parser_cb(program.bindings[0].decl_name))
        return state

    def _run_parser_cb(self, name: str):
        def run(state: ExecutionState):
            parser = state.program.parsers[name]
            self.enter_parser(state, name, [None, HDR][: len(parser.params)])
            return [state]

        return run

    def _run_filter_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped"):
                return [state]
            control = state.program.controls[name]
            self.enter_control(state, name, [HDR, ACCEPT][: len(control.params)])
            return [state]

        return run

    def _finish(self, state: ExecutionState):
        state.finished = True
        state.work.clear()
        if state.props.get("dropped"):
            return [state]
        accept = state.env.get(ACCEPT)
        if accept is None:
            state.props["dropped"] = True
            return [state]
        if accept.is_tainted:
            state.blocked_reason = "tainted accept decision"
            return [state]
        if accept.term.is_const:
            if not accept.term.payload:
                state.props["dropped"] = True
                return [state]
            self._emit_accepted(state)
            return [state]
        # Symbolic accept: branch.
        drop = state.clone()
        if drop.add_constraint(T.not_(accept.term)):
            drop.props["dropped"] = True
        ok = state.add_constraint(accept.term)
        out = [drop]
        if ok:
            self._emit_accepted(state)
            out.append(state)
        return out

    def _emit_accepted(self, state: ExecutionState) -> None:
        """Implicit deparsing: emit every valid header in declaration
        order, then the unparsed payload (already the remainder of L)."""
        hdr_type = state.props["hdr_type"]
        self._emit_value(state, HDR, hdr_type)
        state.packet.commit_emit()
        port = state.props.get("output_port")
        if port is None:
            # The kernel passes accepted packets up/through on the same
            # interface they arrived on.
            port = SymVal(state.props["input_port_term"], 0)
        state.output_packets.append((port, state.packet.live_value()))

    # ==================================================================
    # eBPF quirk: failing extract/advance drops the packet (App. A.1)
    # ==================================================================

    def on_extract_failure(self, state, path, header_type) -> None:
        state.log("eBPF: failing extract drops the packet")
        state.props["dropped"] = True
        state.work.clear()
        state.finished = True

    def on_parser_reject(self, state, parser) -> list:
        state.props["dropped"] = True
        state.work.clear()
        state.finished = True
        return [state]

    # ==================================================================
    # Externs
    # ==================================================================

    def _register_externs(self) -> None:
        self._extern_impls.update(
            {
                "CounterArray.increment": self._ext_noop,
                "CounterArray.add": self._ext_noop,
                "verify": self._ext_verify,
                "log_msg": self._ext_noop,
            }
        )

    def _ext_noop(self, state, call):
        return [state]

    def _ext_verify(self, state, call):
        from ..symex.stepper import eval_expr

        cond = eval_expr(state, call.args[0])
        ok_branch = state.clone()
        fail_branch = state
        out = []
        if ok_branch.add_constraint(cond.term):
            out.append(ok_branch)
        if fail_branch.add_constraint(T.not_(cond.term)):
            self.on_parser_reject(fail_branch, None)
            out.append(fail_branch)
        return out
