"""The t2na target extension — Tofino 2 (paper §6.1.2, App. A.1).

t2na "leverages much of the tna extension" (the paper's words): this
subclass adds what differs —

- the optional *ghost* programmable block (a seventh pipeline slot)
  that runs in parallel with the packet; its intrinsic metadata is
  unpredictable, so it executes with tainted inputs;
- wider intrinsic prepends (192 bits of port metadata vs 128 total);
- Tofino 2 does **not** execute the extract when the packet is too
  short (the header stays invalid rather than unspecified).
"""

from __future__ import annotations

from ..ir import nodes as N
from ..symex.state import ExecutionState
from ..symex.value import SymVal, fresh_tainted, sym_bool, sym_const
from .tna import IG_PRSR, Tna

__all__ = ["T2na"]

GHOST_MD = "*g_intr_md"
T2NA_PORT_METADATA_BITS = 192


class T2na(Tna):
    NAME = "t2na"
    ARCH_INCLUDE = "t2na.p4"
    PORT_METADATA_BITS = T2NA_PORT_METADATA_BITS

    def build_initial_state(self, program: N.IrProgram) -> ExecutionState:
        # GhostPipeline has 7 bindings; plain Pipeline programs also run.
        self._ghost_binding = None
        if len(program.bindings) >= 7:
            self._ghost_binding = program.bindings[6]
        state = super().build_initial_state(program)
        if self._ghost_binding is not None:
            self._queue_ghost(state, program)
        return state

    def _queue_ghost(self, state: ExecutionState, program) -> None:
        """The ghost thread runs concurrently with ingress; we model it
        as executing before ingress with fully tainted inputs (its
        actual interleaving is unpredictable)."""
        ghost_name = self._ghost_binding.decl_name
        ghost = program.controls[ghost_name]
        structs = program.structs
        state.init_type(GHOST_MD, structs["ghost_intrinsic_metadata_t"], "taint")

        def run_ghost(st: ExecutionState):
            control = st.program.controls[ghost_name]
            self.enter_control(st, ghost_name, [GHOST_MD][: len(control.params)])
            return [st]

        # Insert the ghost run just beneath the top of the work stack
        # (i.e. before the ingress parser callable placed by tna).
        state.work.insert(len(state.work) - 1, run_ghost)

    # ------------------------------------------------------------------
    # Tofino 2 short-packet semantics: the extract is not executed.
    # ------------------------------------------------------------------

    def on_extract_failure(self, state, path, header_type) -> None:
        self.set_parser_error(state, "PacketTooShort")
        if state.props.get("in_ingress_parser", True):
            if state.props.get("ingress_reads_parser_err"):
                # Unlike Tofino 1, the header is simply not extracted:
                # it stays invalid (App. A.1: "Tofino 2 will not execute
                # the extract call").
                if header_type is not None:
                    state.write_valid(path, sym_bool(False))
                state.write(f"{IG_PRSR}.parser_err", sym_const(1 << 1, 16))
                state.log("t2na: short packet, extract skipped")
                self._jump_to_reject(state)
                return
            state.props["dropped"] = True
            state.work.clear()
            state.finished = True
            state.log("t2na: short packet dropped in ingress parser")
            return
        if header_type is not None:
            state.write_valid(path, sym_bool(False))
        self._jump_to_reject(state)
