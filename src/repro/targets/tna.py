"""The tna target extension — Tofino 1 (paper §6.1.2, App. A.1).

Pipeline: IngressParser -> Ingress -> IngressDeparser -> traffic
manager -> EgressParser -> Egress -> EgressDeparser.

Tofino behaviors modeled:
- the chip prepends intrinsic metadata (and port metadata) to the
  packet; the parser extracts it from the live packet ``L`` without
  growing the required input ``I`` (§5.2.1);
- packets smaller than 64 bytes are dropped by the ingress parser —
  *unless* the P4 program reads ``parser_err`` in the ingress control,
  in which case parsing stops and the offending header is unspecified
  (tainted);
- the egress parser does not drop short packets;
- if the egress port is never written the packet counts as dropped;
- ``bypass_egress`` skips egress processing;
- ``drop_ctl`` in either deparser metadata drops the packet;
- uninitialized metadata is tainted unless the program carries the
  ``@auto_init_metadata`` annotation (taint mitigation 3);
- Registers, Hash, and Checksum externs are modeled precisely (Hash and
  Checksum concolically); Meters use taint-based rapid prototyping.
"""

from __future__ import annotations

from ..externs.checksum import CHECKSUM_ALGORITHMS, crc16, ones_complement16
from ..frontend.types import HeaderType, StructType
from ..ir import nodes as N
from ..smt import terms as T
from ..symex.state import ConcolicBinding, ExecutionState, RegisterDecision
from ..symex.value import SymVal, fresh_tainted, fresh_var, sym_bool, sym_const
from .base import TargetExtension

__all__ = ["Tna"]

# Canonical pipeline-state paths (paper Fig. 3 analogue for tna).
HDR_I = "*ihdr"
IG_MD = "*ig_md"
IG_INTR = "*ig_intr_md"
IG_PRSR = "*ig_prsr_md"
IG_DPRSR = "*ig_dprsr_md"
IG_TM = "*ig_tm_md"
HDR_E = "*ehdr"
EG_MD = "*eg_md"
EG_INTR = "*eg_intr_md"
EG_PRSR = "*eg_prsr_md"
EG_DPRSR = "*eg_dprsr_md"
EG_OPORT = "*eg_oport_md"

MIN_PACKET_BITS = 64 * 8      # packets below 64 bytes are dropped (§7.2)


class Tna(TargetExtension):
    NAME = "tna"
    ARCH_INCLUDE = "tna.p4"
    local_init_mode = "taint"   # Tofino metadata is uninitialized garbage
    PIPELINE_BINDINGS = 6
    PORT_METADATA_BITS = 64     # Tofino 1 port-metadata prepend (192 on T2)

    # ==================================================================
    # Initial state
    # ==================================================================

    def build_initial_state(self, program: N.IrProgram) -> ExecutionState:
        if len(program.bindings) < self.PIPELINE_BINDINGS:
            raise ValueError(f"{self.NAME} requires a full Pipeline(main) program")
        state = ExecutionState(program, self)
        self._auto_init = self._has_auto_init(program)
        meta_mode = "zero" if self._auto_init else "taint"
        state.props["meta_mode"] = meta_mode

        ig_parser = program.parsers[program.bindings[0].decl_name]
        state.props["ihdr_type"] = ig_parser.params[1].p4_type
        state.props["ig_md_type"] = ig_parser.params[2].p4_type
        eg_parser = program.parsers[program.bindings[3].decl_name]
        state.props["ehdr_type"] = eg_parser.params[1].p4_type
        state.props["eg_md_type"] = eg_parser.params[2].p4_type

        structs = program.structs
        state.init_type(HDR_I, state.props["ihdr_type"], "invalid")
        state.init_type(IG_MD, state.props["ig_md_type"], meta_mode)
        state.init_type(IG_INTR, structs["ingress_intrinsic_metadata_t"], meta_mode)
        state.init_type(
            IG_PRSR, structs["ingress_intrinsic_metadata_from_parser_t"], meta_mode
        )
        state.init_type(
            IG_DPRSR, structs["ingress_intrinsic_metadata_for_deparser_t"], "zero"
        )
        state.init_type(IG_TM, structs["ingress_intrinsic_metadata_for_tm_t"], "zero")
        # "If the egress port variable is not written ... dropped": start
        # it tainted so an unwritten port is detectably unpredictable.
        state.write(f"{IG_TM}.ucast_egress_port", fresh_tainted("ucast", 9))

        in_port = fresh_var("*in_port", 9)
        state.props["input_port_term"] = in_port.term
        state.props["in_port"] = in_port

        pkt_len = state.packet.pkt_len
        state.add_constraint(
            T.eq(T.bv_and(pkt_len, T.bv_const(7, 32)), T.bv_const(0, 32))
        )
        if self.preconditions.fixed_packet_size_bytes is not None:
            state.add_constraint(
                T.eq(
                    pkt_len,
                    T.bv_const(self.preconditions.fixed_packet_size_bytes * 8, 32),
                )
            )
        else:
            state.add_constraint(
                T.ule(pkt_len, T.bv_const(self.preconditions.max_packet_bytes * 8, 32))
            )
            # Tofino's 64-byte minimum (App. A.1).
            state.add_constraint(T.uge(pkt_len, T.bv_const(MIN_PACKET_BITS, 32)))

        state.props["ingress_reads_parser_err"] = self._reads_parser_err(
            program, program.bindings[1].decl_name
        )

        self._prepend_ingress_metadata(state, in_port)
        self._queue_pipeline(state, program)
        return state

    @staticmethod
    def _has_auto_init(program) -> bool:
        """Taint mitigation 3: @auto_init_metadata zeroes all metadata."""
        for ann in program.annotations:
            if getattr(ann, "name", "") == "auto_init_metadata":
                return True
        return bool(program.consts.get("AUTO_INIT_METADATA", 0))

    def _reads_parser_err(self, program, ingress_name: str) -> bool:
        """Static scan: does the ingress control reference parser_err?"""
        control = program.controls[ingress_name]
        found = [False]

        def walk_lval(lv):
            if isinstance(lv, N.FieldLV):
                if lv.field == "parser_err":
                    found[0] = True
                walk_lval(lv.base)
            elif isinstance(lv, (N.IndexLV, N.SliceLV)):
                walk_lval(lv.base)

        def walk_expr(e):
            if e is None:
                return
            if isinstance(e, N.IrLValExpr):
                walk_lval(e.lval)
            for attr in ("left", "right", "operand", "cond", "then", "other", "expr"):
                child = getattr(e, attr, None)
                if isinstance(child, N.IrExpr):
                    walk_expr(child)
            for part in getattr(e, "parts", ()) or ():
                walk_expr(part)
            for arg in getattr(e, "args", ()) or ():
                if isinstance(arg, N.IrExpr):
                    walk_expr(arg)

        def walk_stmts(stmts):
            for s in stmts:
                if isinstance(s, N.IrAssign):
                    walk_expr(s.value)
                elif isinstance(s, N.IrVarDecl):
                    walk_expr(s.init)
                elif isinstance(s, N.IrIf):
                    walk_expr(s.cond)
                    walk_stmts(s.then_stmts)
                    walk_stmts(s.else_stmts)
                elif isinstance(s, N.IrMethodCall):
                    walk_expr(s.call)
                elif isinstance(s, N.IrSwitch):
                    for _labels, body in s.cases:
                        walk_stmts(body)

        walk_stmts(control.apply_stmts)
        for action in control.actions.values():
            walk_stmts(action.body)
        return found[0]

    # ------------------------------------------------------------------
    # Metadata prepends (§5.2.1: "targets may prepend parseable
    # metadata to the input packet; it is added to L")
    # ------------------------------------------------------------------

    def _prepend_ingress_metadata(self, state: ExecutionState, in_port) -> None:
        # ingress_intrinsic_metadata_t layout (64 bits):
        # resubmit_flag(1) pad(1) version(2) pad(3) port(9) tstamp(48)
        tstamp = fresh_tainted("*mac_tstamp", 48)
        meta_term = T.concat(
            T.bv_const(0, 1),            # resubmit_flag
            T.bv_const(0, 1),
            T.bv_const(0, 2),            # packet_version
            T.bv_const(0, 3),
            in_port.term,
            tstamp.term,
        )
        taint = (1 << 48) - 1            # timestamp bits unpredictable
        from ..symex.packet import Segment

        state.packet.prepend_live(SymVal(meta_term, taint))
        # Port metadata (phase-0 data) follows the intrinsic metadata;
        # its content is configuration-dependent, hence fully tainted.
        port_md = fresh_tainted("*port_md", self.PORT_METADATA_BITS)
        state.packet.live.insert(1, Segment(port_md.term, port_md.taint))

    def _prepend_egress_metadata(self, state: ExecutionState, egress_port: SymVal) -> None:
        # egress_intrinsic_metadata_t (see prelude, 144 bits): _pad0(7)
        # egress_port(9) then 128 bits of queueing data (tainted).
        rest = fresh_tainted("*eg_q", 128)
        term = T.concat(T.bv_const(0, 7), egress_port.term, rest.term)
        taint = (1 << 128) - 1 | (egress_port.taint << 128)
        state.packet.prepend_live(SymVal(term, taint))

    # ------------------------------------------------------------------
    # Pipeline queueing
    # ------------------------------------------------------------------

    def _queue_pipeline(self, state: ExecutionState, program) -> None:
        b = program.bindings
        state.push_work(self._finish)
        state.push_work(self._run_egress_deparser_cb(b[5].decl_name))
        state.push_work(self._run_egress_cb(b[4].decl_name))
        state.push_work(self._run_egress_parser_cb(b[3].decl_name))
        state.push_work(self._traffic_manager)
        state.push_work(self._run_ingress_deparser_cb(b[2].decl_name))
        state.push_work(self._run_ingress_cb(b[1].decl_name))
        state.push_work(self._run_ingress_parser_cb(b[0].decl_name))

    def _run_ingress_parser_cb(self, name: str):
        def run(state: ExecutionState):
            parser = state.program.parsers[name]
            paths = [None, HDR_I, IG_MD, IG_INTR][: len(parser.params)]
            state.props["in_ingress_parser"] = True
            self.enter_parser(state, name, paths)
            return [state]

        return run

    def _run_ingress_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped"):
                return [state]
            state.props["in_ingress_parser"] = False
            control = state.program.controls[name]
            paths = [HDR_I, IG_MD, IG_INTR, IG_PRSR, IG_DPRSR, IG_TM]
            self.enter_control(state, name, paths[: len(control.params)])
            return [state]

        return run

    def _run_ingress_deparser_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped"):
                return [state]
            control = state.program.controls[name]
            paths = [None, HDR_I, IG_MD, IG_DPRSR]
            state.push_work(self._commit_ingress_deparse)
            self.enter_control(state, name, paths[: len(control.params)])
            return [state]

        return run

    def _commit_ingress_deparse(self, state: ExecutionState):
        if not state.props.get("dropped"):
            state.packet.commit_emit()
        return [state]

    def _traffic_manager(self, state: ExecutionState):
        if state.props.get("dropped"):
            return [state]
        drop_ctl = state.read(f"{IG_DPRSR}.drop_ctl", 3)
        out_states = []
        if drop_ctl.is_tainted:
            state.blocked_reason = "tainted drop_ctl"
            state.finished = True
            state.work.clear()
            return [state]
        zero3 = T.bv_const(0, 3)
        if not drop_ctl.term.is_const:
            drop_branch = state.clone()
            if drop_branch.add_constraint(T.ne(drop_ctl.term, zero3)):
                drop_branch.props["dropped"] = True
                drop_branch.log("TM: drop_ctl set, packet dropped")
                out_states.append(drop_branch)
            if not state.add_constraint(T.eq(drop_ctl.term, zero3)):
                return out_states
        elif drop_ctl.term.value != 0:
            state.props["dropped"] = True
            state.log("TM: drop_ctl set, packet dropped")
            return [state]

        # Resubmit?
        resubmit_type = state.read(f"{IG_DPRSR}.resubmit_type", 3)
        if resubmit_type.term.is_const and resubmit_type.term.value != 0:
            count = state.props.get("recirc_count", 0)
            if count < self.MAX_RECIRCULATIONS:
                state.props["recirc_count"] = count + 1
                state.write(f"{IG_DPRSR}.resubmit_type", sym_const(0, 3))
                state.log("TM: resubmit")
                b = state.program.bindings
                state.push_work(self._traffic_manager)
                state.push_work(self._run_ingress_deparser_cb(b[2].decl_name))
                state.push_work(self._run_ingress_cb(b[1].decl_name))
                out_states.append(state)
                return out_states

        port = state.read(f"{IG_TM}.ucast_egress_port", 9)
        if port.is_tainted:
            # Egress port never written -> automatically dropped (A.1).
            state.props["dropped"] = True
            state.log("TM: egress port unwritten, packet dropped")
            out_states.append(state)
            return out_states
        state.props["egress_port"] = port

        bypass = state.read(f"{IG_TM}.bypass_egress", 1)
        if bypass.term.is_const and bypass.term.value == 1:
            state.props["bypass_egress"] = True
            state.log("TM: bypass_egress")
            out_states.append(state)
            return out_states
        if not bypass.term.is_const and not bypass.is_tainted:
            byp = state.clone()
            if byp.add_constraint(T.eq(bypass.term, T.bv_const(1, 1))):
                byp.props["bypass_egress"] = True
                out_states.append(byp)
            if not state.add_constraint(T.eq(bypass.term, T.bv_const(0, 1))):
                return out_states

        # Prepare egress-side state.
        meta_mode = state.props["meta_mode"]
        structs = state.program.structs
        state.init_type(HDR_E, state.props["ehdr_type"], "invalid")
        state.init_type(EG_MD, state.props["eg_md_type"], meta_mode)
        state.init_type(EG_INTR, structs["egress_intrinsic_metadata_t"], meta_mode)
        state.init_type(
            EG_PRSR, structs["egress_intrinsic_metadata_from_parser_t"], meta_mode
        )
        state.init_type(
            EG_DPRSR, structs["egress_intrinsic_metadata_for_deparser_t"], "zero"
        )
        state.init_type(
            EG_OPORT,
            structs["egress_intrinsic_metadata_for_output_port_t"],
            "zero",
        )
        self._prepend_egress_metadata(state, port)
        out_states.append(state)
        return out_states

    def _run_egress_parser_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped") or state.props.get("bypass_egress"):
                return [state]
            parser = state.program.parsers[name]
            paths = [None, HDR_E, EG_MD, EG_INTR][: len(parser.params)]
            state.props["in_ingress_parser"] = False
            self.enter_parser(state, name, paths)
            return [state]

        return run

    def _run_egress_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped") or state.props.get("bypass_egress"):
                return [state]
            control = state.program.controls[name]
            paths = [HDR_E, EG_MD, EG_INTR, EG_PRSR, EG_DPRSR, EG_OPORT]
            self.enter_control(state, name, paths[: len(control.params)])
            return [state]

        return run

    def _run_egress_deparser_cb(self, name: str):
        def run(state: ExecutionState):
            if state.props.get("dropped") or state.props.get("bypass_egress"):
                return [state]
            control = state.program.controls[name]
            paths = [None, HDR_E, EG_MD, EG_DPRSR]
            state.push_work(self._commit_egress_deparse)
            self.enter_control(state, name, paths[: len(control.params)])
            return [state]

        return run

    def _commit_egress_deparse(self, state: ExecutionState):
        if state.props.get("dropped") or state.props.get("bypass_egress"):
            return [state]
        state.packet.commit_emit()
        return [state]

    def _finish(self, state: ExecutionState):
        state.finished = True
        state.work.clear()
        if state.props.get("dropped"):
            return [state]
        # Egress deparser drop_ctl.
        if not state.props.get("bypass_egress"):
            drop_ctl = state.read(f"{EG_DPRSR}.drop_ctl", 3)
            if drop_ctl.term.is_const and drop_ctl.term.value != 0:
                state.props["dropped"] = True
                return [state]
            if drop_ctl.is_tainted:
                state.blocked_reason = "tainted egress drop_ctl"
                return [state]
            if not drop_ctl.term.is_const:
                # Keep the no-drop interpretation; the drop variant was
                # explored when the program branched on it.
                state.add_constraint(T.eq(drop_ctl.term, T.bv_const(0, 3)))
        port = state.props.get("egress_port")
        if port is None:
            state.props["dropped"] = True
            return [state]
        state.output_packets.append((port, state.packet.live_value()))
        for extra in state.props.get("mirror_outputs", []):
            state.output_packets.append(extra)
        return [state]

    # ==================================================================
    # Parser error policy (App. A.1)
    # ==================================================================

    def on_extract_failure(self, state, path, header_type) -> None:
        self.set_parser_error(state, "PacketTooShort")
        if state.props.get("in_ingress_parser", True):
            if state.props.get("ingress_reads_parser_err"):
                # Header content unspecified: taint it, skip remaining
                # parser execution, continue with ingress.
                if header_type is not None and hasattr(header_type, "fields"):
                    state.write_valid(path, sym_bool(True))
                    for fname, ftype in header_type.fields:
                        state.write(
                            f"{path}.{fname}",
                            fresh_tainted(f"{path}.{fname}", ftype.bit_width()),
                        )
                state.write(
                    f"{IG_PRSR}.parser_err",
                    sym_const(1 << 1, 16),  # PacketTooShort flag bit
                )
                state.log("tna: short packet, parser_err consumed by ingress")
                self._jump_to_reject(state)
                return
            state.log("tna: short packet dropped in ingress parser")
            state.props["dropped"] = True
            state.work.clear()
            state.finished = True
            return
        # Egress parser never drops; header is unspecified.
        if header_type is not None and hasattr(header_type, "fields"):
            state.write_valid(path, sym_bool(True))
            for fname, ftype in header_type.fields:
                state.write(
                    f"{path}.{fname}",
                    fresh_tainted(f"{path}.{fname}", ftype.bit_width()),
                )
        state.write(f"{EG_PRSR}.parser_err", sym_const(1 << 1, 16))
        self._jump_to_reject(state)

    def on_parser_reject(self, state, parser) -> list:
        if state.props.get("in_ingress_parser", True) and \
                not state.props.get("ingress_reads_parser_err"):
            state.props["dropped"] = True
            state.work.clear()
            state.finished = True
            return [state]
        state.log("tna: parser reject, continuing (parser_err visible)")
        return [state]

    def parser_error_path(self) -> str | None:
        return None  # tna exposes parser_err via ig_prsr_md, set above

    # ==================================================================
    # Externs
    # ==================================================================

    def _register_externs(self) -> None:
        self._extern_impls.update(
            {
                "Register.write": self._ext_register_write,
                "Counter.count": self._ext_noop,
                "DirectCounter.count": self._ext_noop,
                "Mirror.emit": self._ext_mirror_emit,
                "Resubmit.emit": self._ext_resubmit_emit,
                "Digest.pack": self._ext_noop,
                "Checksum.add": self._ext_checksum_add,
                "Checksum.subtract": self._ext_checksum_subtract,
                "Checksum.subtract_all_and_deposit": self._ext_checksum_deposit,
                "log_msg": self._ext_noop,
                "verify": self._ext_verify,
            }
        )
        self._extern_value_impls.update(
            {
                "Register.read": self._extv_register_read,
                "Hash.get": self._extv_hash_get,
                "Random.get": self._extv_random_get,
                "Meter.execute": self._extv_meter,
                "DirectMeter.execute": self._extv_meter,
                "Checksum.get": self._extv_checksum_get,
                "Checksum.update": self._extv_checksum_get,
                "Checksum.verify": self._extv_checksum_verify,
            }
        )

    def _ext_noop(self, state, call):
        return [state]

    def _ext_verify(self, state, call):
        from ..symex.stepper import eval_expr

        cond = eval_expr(state, call.args[0])
        ok_branch = state.clone()
        fail = state
        out = []
        if ok_branch.add_constraint(cond.term):
            out.append(ok_branch)
        if fail.add_constraint(T.not_(cond.term)):
            self.on_parser_reject(fail, None)
            out.append(fail)
        return out

    # -- registers -------------------------------------------------------

    def _extv_register_read(self, state, call):
        from ..symex.stepper import eval_expr

        index = eval_expr(state, call.args[0])
        inst = state.program.controls  # width from the instance decl
        width = call.p4_type.bit_width() if call.p4_type is not None else 32
        written = state.props.get(("register", call.obj), {})
        if index.term.is_const and index.term.value in written:
            return written[index.term.value]
        if index.term.is_const:
            if not self.backend_caps.registers:
                return SymVal(T.bv_const(0, width), 0)
            var = fresh_var(f"{call.obj}[{index.term.value}]", width)
            state.cp_decisions.append(
                RegisterDecision(call.obj, index.term.value, var.term)
            )
            return var
        return fresh_tainted(f"{call.obj}[?]", width)

    def _ext_register_write(self, state, call):
        from ..symex.stepper import eval_expr

        index = eval_expr(state, call.args[0])
        value = eval_expr(state, call.args[1])
        if index.term.is_const:
            regs = dict(state.props.get(("register", call.obj), {}))
            regs[index.term.value] = value
            state.props[("register", call.obj)] = regs
        return [state]

    # -- hash / checksum (concolic) ----------------------------------------

    def _instance_algo(self, state, instance_name: str) -> str:
        for block in list(state.program.parsers.values()) + list(
            state.program.controls.values()
        ):
            inst = block.instances.get(instance_name.rsplit(".", 1)[-1])
            if inst is not None and inst.full_name == instance_name:
                for arg in inst.ctor_args:
                    if isinstance(arg, N.IrConst):
                        enum = state.program.enums.get("HashAlgorithm_t")
                        if enum is not None:
                            for member, value in enum.values.items():
                                if value == arg.value:
                                    return member
        return "CRC16"

    def _data_terms(self, state, data_arg):
        from ..symex.stepper import eval_expr, resolve_lvalue

        terms = []
        elements = (
            data_arg.elements if isinstance(data_arg, N.IrTupleExpr) else (data_arg,)
        )
        for e in elements:
            if isinstance(e, N.IrTupleExpr):
                terms.extend(self._data_terms(state, e))
                continue
            if isinstance(e, N.IrLValExpr) and isinstance(
                e.p4_type, (HeaderType, StructType)
            ):
                path, t = resolve_lvalue(state, e.lval)
                for fname, ftype in t.fields:
                    terms.append(state.read(f"{path}.{fname}", ftype.bit_width()).term)
                continue
            terms.append(eval_expr(state, e).term)
        return terms

    def _extv_hash_get(self, state, call):
        width = call.p4_type.bit_width() if call.p4_type is not None else 16
        algo = self._instance_algo(state, call.obj)
        concrete_fn = CHECKSUM_ALGORITHMS.get(algo, crc16)
        data_terms = self._data_terms(state, call.args[0])
        hvar = fresh_var(f"hash*{call.obj}", width)
        state.concolics.append(
            ConcolicBinding(
                var=hvar.term,
                func=f"hash:{algo}",
                arg_terms=data_terms,
                concrete_fn=lambda values, _fn=concrete_fn, _ts=data_terms, _w=width:
                    _fn(list(zip([t.width for t in _ts], values)), _w),
            )
        )
        return hvar

    def _ext_checksum_add(self, state, call):
        terms = self._data_terms(state, call.args[0])
        acc = list(state.props.get(("checksum_acc", call.obj), []))
        acc.extend(terms)
        state.props[("checksum_acc", call.obj)] = acc
        return [state]

    def _ext_checksum_subtract(self, state, call):
        # Modeled as accumulation too; ones'-complement subtraction is
        # addition of the complement, handled by the concrete function.
        return self._ext_checksum_add(state, call)

    def _ext_checksum_deposit(self, state, call):
        from ..symex.stepper import resolve_lvalue

        lv = call.args[0]
        if isinstance(lv, N.IrLValExpr):
            lv = lv.lval
        path, p4_type = resolve_lvalue(state, lv)
        value = self._checksum_concolic(state, call.obj, p4_type.bit_width())
        state.write(path, value)
        return [state]

    def _checksum_concolic(self, state, instance: str, width: int) -> SymVal:
        acc = state.props.get(("checksum_acc", instance), [])
        cvar = fresh_var(f"csum*{instance}", width)
        state.concolics.append(
            ConcolicBinding(
                var=cvar.term,
                func="checksum:csum16",
                arg_terms=list(acc),
                concrete_fn=lambda values, _ts=list(acc), _w=width:
                    ones_complement16(
                        list(zip([t.width for t in _ts], values)), _w
                    ),
            )
        )
        return cvar

    def _extv_checksum_get(self, state, call):
        width = call.p4_type.bit_width() if call.p4_type is not None else 16
        if call.args:
            self._ext_checksum_add(state, call)
        return self._checksum_concolic(state, call.obj, width)

    def _extv_checksum_verify(self, state, call):
        value = self._checksum_concolic(state, call.obj, 16)
        return SymVal(T.eq(value.term, T.bv_const(0, 16)), 0)

    # -- randomness: tainted ------------------------------------------------

    def _extv_random_get(self, state, call):
        width = call.p4_type.bit_width() if call.p4_type is not None else 16
        state.log("Random.get: output tainted")
        return fresh_tainted("random", width)

    def _extv_meter(self, state, call):
        # Rapid prototyping with taint (§5.3): meters unmodeled.
        width = call.p4_type.bit_width() if call.p4_type is not None else 8
        state.log("Meter.execute: rapid-prototyped via taint")
        return fresh_tainted("meter", width)

    # -- mirror / resubmit -----------------------------------------------------

    def _ext_mirror_emit(self, state, call):
        port = fresh_var("mirror*port", 9)
        pkt_val = state.packet.live_value()
        outs = list(state.props.get("mirror_outputs", []))
        outs.append((port, pkt_val))
        state.props["mirror_outputs"] = outs
        state.log("Mirror.emit: mirrored copy requested")
        return [state]

    def _ext_resubmit_emit(self, state, call):
        state.write(f"{IG_DPRSR}.resubmit_type", sym_const(1, 3))
        state.log("Resubmit.emit")
        return [state]
