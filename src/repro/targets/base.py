"""Target-extension framework (paper §5).

A :class:`TargetExtension` supplies everything the core symbolic
executor leaves open:

- the *pipeline template*: how architectural blocks chain together and
  what per-packet state threads between them (§5.1), expressed as
  Python continuations pushed onto the state's work stack;
- overrides for core packet functions (extract/advance/lookahead/emit)
  and their failure semantics (§5.2);
- extern implementations, including concolic ones (§5.4);
- policies: uninitialized-value semantics, const-entry ordering,
  preconditions (fixed packet sizes, minimum sizes, metadata zeroing).

Concrete targets (v1model, ebpf, tna, t2na) subclass this without any
change to the core stepper — the paper's extensibility claim.
"""

from __future__ import annotations

from ..frontend.types import HeaderType, P4Type, StackType, StructType, VarbitType
from ..ir import nodes as N
from ..smt import terms as T
from ..symex.state import ExecutionState, ExitMarker, ParserStateItem
from ..symex.value import SymVal, fresh_tainted, fresh_var, sym_bool, sym_const

__all__ = ["TargetExtension", "Preconditions"]


class Preconditions:
    """Optional input-space restrictions (paper Tbl. 4b)."""

    def __init__(self, fixed_packet_size_bytes: int | None = None,
                 p4constraints: bool = False,
                 max_packet_bytes: int = 1500,
                 byte_aligned: bool = True):
        self.fixed_packet_size_bytes = fixed_packet_size_bytes
        self.p4constraints = p4constraints
        self.max_packet_bytes = max_packet_bytes
        self.byte_aligned = byte_aligned


class _BackendCaps:
    """Control-plane capabilities of a test framework (§6)."""

    def __init__(self, framework: str | None):
        self.framework = framework
        if framework is None or framework in ("ptf", "protobuf", "internal"):
            self.range_entries = True
            self.registers = True
            self.value_sets = True
        elif framework == "stf":
            self.range_entries = False   # "STF does not yet support
            self.registers = False       #  adding range entries" (§6)
            self.value_sets = True
        else:
            raise ValueError(f"unknown test framework {framework!r}")


class TargetExtension:
    """Base class; subclasses define NAME, ARCH_INCLUDE, and hooks."""

    NAME = "abstract"
    ARCH_INCLUDE = "core.p4"
    # How locals/uninitialized reads behave unless the target overrides:
    # reading undefined state yields tainted bits (§5.3).
    local_init_mode = "taint"
    MAX_RECIRCULATIONS = 2
    # Taint mitigation 2 (§5.3): wildcard ternary entries hide key
    # taint.  Disabled by the taint-spread ablation benchmark.
    taint_wildcard_mitigation = True

    def __init__(self, preconditions: Preconditions | None = None,
                 test_framework: str | None = None):
        self.preconditions = preconditions or Preconditions()
        # Richness of the chosen test framework's API limits what the
        # control plane can configure (§6): e.g. STF cannot express
        # range entries or initialize registers, so paths requiring
        # those are not generated ("cover fewer paths").
        self.backend_caps = _BackendCaps(test_framework)
        self._extern_impls: dict = {}
        self._extern_value_impls: dict = {}
        self._register_externs()

    @property
    def name(self) -> str:
        return self.NAME

    # ==================================================================
    # To be provided by subclasses
    # ==================================================================

    def build_initial_state(self, program: N.IrProgram) -> ExecutionState:
        raise NotImplementedError

    def finalize_outputs(self, state: ExecutionState, eval_fn):
        """Returns ([(port, bits, width, dont_care_mask)], dropped)."""
        outputs = []
        dropped = not state.output_packets
        for port_val, pkt_val in state.output_packets:
            if port_val.is_tainted:
                continue  # should have been blocked earlier
            port = eval_fn(port_val.term)
            if pkt_val is None:
                outputs.append((port, 0, 0, 0))
                continue
            bits = eval_fn(pkt_val.term)
            outputs.append((port, bits, pkt_val.term.width, pkt_val.taint))
        return outputs, dropped

    def _register_externs(self) -> None:
        """Subclasses populate self._extern_impls / _extern_value_impls."""

    # ==================================================================
    # Policies the stepper consults
    # ==================================================================

    def uninitialized_value(self, state, path: str, width: int) -> SymVal:
        return fresh_tainted(path, width)

    def order_const_entries(self, table: N.IrTable) -> list:
        """Program order by default; v1model honours @priority."""
        return list(table.const_entries)

    def entry_constraints(self, state, table: N.IrTable, key_fields) -> list:
        """Extra constraints on a synthesized entry's key variables
        (P4-constraints hook; §6.1.1)."""
        if not self.preconditions.p4constraints:
            return []
        constraint_src = state.program.p4constraints.get(table.full_name)
        if not constraint_src:
            return []
        from ..control_plane.p4constraints import ConstraintError, constraint_terms

        key_vars = {}
        for name, _kind, roles in key_fields:
            if "value" in roles:
                key_vars[name] = roles["value"]
        try:
            return constraint_terms(constraint_src, key_vars)
        except ConstraintError:
            return []

    def extern_impl(self, func: str):
        return self._extern_impls.get(func)

    def extern_value_impl(self, func: str):
        return self._extern_value_impls.get(func)

    # ==================================================================
    # Packet methods (core defaults; §5.2 override points)
    # ==================================================================

    def packet_method(self, func: str):
        return {
            "extract": self.do_extract,
            "emit": self.do_emit,
            "advance": self.do_advance,
            "lookahead": self.do_lookahead,
            "length": self.do_length,
        }[func]

    # -- extract ---------------------------------------------------------

    def do_extract(self, state: ExecutionState, call: N.IrCall) -> list:
        from ..symex.stepper import StackOverflowSignal, eval_expr, resolve_lvalue

        header_lv = call.args[0]
        try:
            path, header_type = resolve_lvalue(state, header_lv)
        except StackOverflowSignal:
            # P4-16 §8.18: extract into a full stack signals
            # error.StackOutOfBounds and rejects.
            self.set_parser_error(state, "StackOutOfBounds")
            self._jump_to_reject(state)
            return [state]
        if isinstance(header_type, VarbitType):
            raise NotImplementedError("top-level varbit extract")
        width = header_type.bit_width()
        if len(call.args) > 1:
            # Two-arg form: extract(hdr, varbitBits).  The varbit field
            # must be last; only constant lengths survive the mid-end.
            extra = call.args[1]
            if isinstance(extra, N.IrConst):
                width += int(extra.value)
            else:
                extra_val = eval_expr(state, extra)
                if extra_val.term.is_const:
                    width += extra_val.term.value
                else:
                    raise NotImplementedError("symbolic varbit extract length")
        return self._extract_bits(state, path, header_type, width)

    def short_residue_bits(self, deficit: int) -> int:
        """How much of the failing header the too-short test packet
        still carries: the largest allowed length below the requirement
        (byte-aligned by default, like real link layers)."""
        if self.preconditions.byte_aligned:
            return ((deficit - 1) // 8) * 8 if deficit > 0 else 0
        return max(deficit - 1, 0)

    def _too_short_branch(self, state, deficit: int):
        """Build the failure sibling for a consume of ``deficit`` fresh
        input bits.  The residue (the partial header actually present)
        is materialized into I and L so it flows to the output as
        unparsed payload, and the packet length is pinned exactly."""
        fail = state.clone()
        residue = self.short_residue_bits(deficit)
        if residue > 0:
            fail.packet.ensure_live(residue)
        ok = fail.add_constraint(
            T.eq(
                fail.packet.pkt_len,
                T.bv_const(fail.packet.input_bits, 32),
            )
        )
        return fail if ok else None

    def _extract_bits(self, state, path: str, header_type, width: int) -> list:
        successors = []
        deficit = width - state.packet.live_bits()
        if deficit > 0:
            # Too-short branch (§5.2.1): the input packet ends inside
            # this header.
            fail = self._too_short_branch(state, deficit)
            if fail is not None:
                self.on_extract_failure(fail, path, header_type)
                successors.append(fail)
            ok = state.add_constraint(
                T.uge(
                    state.packet.pkt_len,
                    T.bv_const(state.packet.input_bits + deficit, 32),
                )
            )
            if not ok:
                return successors
        value = state.packet.consume(width)
        self._write_extracted(state, path, header_type, value)
        state.log(f"extract {path} ({width} bits)")
        successors.append(state)
        return successors

    def _write_extracted(self, state, path: str, header_type, value: SymVal) -> None:
        if isinstance(header_type, HeaderType):
            state.write_valid(path, sym_bool(True))
            offset = 0
            total = value.term.width
            for fname, ftype in header_type.fields:
                fwidth = ftype.bit_width()
                hi = total - offset - 1
                lo = total - offset - fwidth
                term = T.extract(value.term, hi, lo)
                taint = (value.taint >> lo) & ((1 << fwidth) - 1)
                state.write(f"{path}.{fname}", SymVal(term, taint))
                offset += fwidth
            self._bump_stack_index(state, path)
            return
        if isinstance(header_type, StructType):
            offset = 0
            total = value.term.width
            for fname, ftype in header_type.fields:
                fwidth = ftype.bit_width()
                hi = total - offset - 1
                lo = total - offset - fwidth
                state.write(
                    f"{path}.{fname}",
                    SymVal(
                        T.extract(value.term, hi, lo),
                        (value.taint >> lo) & ((1 << fwidth) - 1),
                    ),
                )
                offset += fwidth
            return
        state.write(path, value)

    def _bump_stack_index(self, state, path: str) -> None:
        # hdr.stack[i] extracted via .next: path ends with [i]
        if path.endswith("]"):
            base = path[: path.rindex("[")]
            if base in state.next_index:
                state.next_index[base] = state.next_index[base] + 1

    def on_extract_failure(self, state: ExecutionState, path: str,
                           header_type) -> None:
        """Core P4: signal PacketTooShort and transition to reject.
        Targets override (BMv2 invalidates the header and jumps to the
        control; Tofino drops unless parser_err is read)."""
        self.set_parser_error(state, "PacketTooShort")
        self._jump_to_reject(state)

    def set_parser_error(self, state: ExecutionState, err_name: str) -> None:
        code = state.program.error_code(err_name)
        state.props["parser_error"] = code
        err_path = self.parser_error_path()
        if err_path:
            state.write(err_path, sym_const(code, 32))

    def parser_error_path(self) -> str | None:
        return None

    def _jump_to_reject(self, state: ExecutionState) -> None:
        # Discard queued parser work up to the accept-hook callable and
        # enter the reject flow.
        while state.work:
            top = state.work[-1]
            if isinstance(top, ParserStateItem) or (
                isinstance(top, tuple) and top and top[0] == "transition"
            ) or isinstance(top, N.IrStmt):
                state.work.pop()
                continue
            break
        parser_name = state.props.get("current_parser")
        state.push_work(ParserStateItem(parser_name, "reject"))

    # -- emit -------------------------------------------------------------

    def do_emit(self, state: ExecutionState, call: N.IrCall) -> list:
        from ..symex.stepper import resolve_lvalue

        lv = call.args[0]
        path, p4_type = resolve_lvalue(state, lv)
        self._emit_value(state, path, p4_type)
        return [state]

    def _emit_value(self, state, path: str, p4_type: P4Type) -> None:
        if isinstance(p4_type, HeaderType):
            valid = state.read_valid(path)
            if valid.term.is_const:
                if not valid.term.payload:
                    return
                value = self._pack_fields(state, path, p4_type)
                state.packet.emit(value)
                state.log(f"emit {path}")
                return
            # Symbolic validity: branch-free modeling would need
            # variable-width vectors; emit both contents guarded is not
            # expressible, so we fork at the stepper level instead.
            # Here we conservatively branch via an exception-free trick:
            # treat as valid-constrained (the deparser usually emits
            # headers whose validity is path-determined).
            value = self._pack_fields(state, path, p4_type)
            guard_state_fork(state, valid, value)
            return
        if isinstance(p4_type, StructType):
            for fname, ftype in p4_type.fields:
                self._emit_value(state, f"{path}.{fname}", ftype)
            return
        if isinstance(p4_type, StackType):
            for i in range(p4_type.size):
                self._emit_value(state, f"{path}[{i}]", p4_type.element)
            return
        value = state.read(path, p4_type.bit_width())
        state.packet.emit(value)

    def _pack_fields(self, state, path: str, header_type: HeaderType) -> SymVal:
        parts = []
        taint = 0
        for fname, ftype in header_type.fields:
            v = state.read(f"{path}.{fname}", ftype.bit_width())
            parts.append(v.term)
            taint = (taint << ftype.bit_width()) | v.taint
        term = T.concat(*parts) if len(parts) > 1 else parts[0]
        return SymVal(term, taint)

    # -- advance / lookahead / length --------------------------------------

    def do_advance(self, state: ExecutionState, call: N.IrCall) -> list:
        from ..symex.stepper import eval_expr

        amount = eval_expr(state, call.args[0])
        if not amount.term.is_const:
            raise NotImplementedError(
                "symbolic advance length (paper §2.3 challenge 4); "
                "the mid-end should have folded it"
            )
        width = amount.term.value
        if width == 0:
            return [state]
        successors = []
        deficit = width - state.packet.live_bits()
        if deficit > 0:
            fail = self._too_short_branch(state, deficit)
            if fail is not None:
                self.on_extract_failure(fail, "<advance>", None)
                successors.append(fail)
            if not state.add_constraint(
                T.uge(
                    state.packet.pkt_len,
                    T.bv_const(state.packet.input_bits + deficit, 32),
                )
            ):
                return successors
        state.packet.consume(width)
        state.log(f"advance {width} bits")
        successors.append(state)
        return successors

    def do_lookahead(self, state: ExecutionState, call: N.IrCall) -> list:
        # lookahead<T>() returns a value; in statement position it is a
        # no-op other than the size requirement.
        rtype = call.p4_type
        width = rtype.bit_width() if rtype is not None else 0
        if width == 0:
            return [state]
        successors = []
        deficit = width - state.packet.live_bits()
        if deficit > 0:
            fail = self._too_short_branch(state, deficit)
            if fail is not None:
                self.on_extract_failure(fail, "<lookahead>", None)
                successors.append(fail)
            if not state.add_constraint(
                T.uge(
                    state.packet.pkt_len,
                    T.bv_const(state.packet.input_bits + deficit, 32),
                )
            ):
                return successors
        value = state.packet.peek(width)
        state.props["last_lookahead"] = value
        successors.append(state)
        return successors

    def do_length(self, state: ExecutionState, call: N.IrCall) -> list:
        return [state]

    # ==================================================================
    # Parser accept/reject hooks
    # ==================================================================

    def on_parser_accept(self, state: ExecutionState, parser) -> list:
        return [state]

    def on_parser_reject(self, state: ExecutionState, parser) -> list:
        """Core default: rejected packets are dropped."""
        state.props["dropped"] = True
        state.work.clear()
        state.finished = True
        return [state]

    # ==================================================================
    # Block execution helpers shared by concrete targets
    # ==================================================================

    def enter_parser(self, state: ExecutionState, parser_name: str,
                     arg_paths: list) -> None:
        """Queue a parser block.  ``arg_paths`` maps parser params (in
        declaration order) to canonical storage paths; packet params map
        to None."""
        program = state.program
        parser = program.parsers[parser_name]
        aliases = {}
        for param, path in zip(parser.params, arg_paths):
            if path is None:
                continue
            aliases[param.name] = path
            if param.direction == "out":
                state.init_type(path, param.p4_type, "invalid")
        state.props["current_parser"] = parser_name
        state.push_frame(aliases)
        # Stack order: locals run first, then the start state.
        state.push_work(ParserStateItem(parser_name, "start"))
        for decl in reversed(parser.locals):
            state.push_work(decl)

    def enter_control(self, state: ExecutionState, control_name: str,
                      arg_paths: list) -> None:
        program = state.program
        control = program.controls[control_name]
        aliases = {}
        for param, path in zip(control.params, arg_paths):
            if path is None:
                continue
            aliases[param.name] = path
            if param.direction == "out":
                state.init_type(path, param.p4_type, self.local_init_mode)
        state.push_frame(aliases)
        state.push_work(ExitMarker())
        state.push_stmts(control.apply_stmts)
        for decl in reversed(control.locals):
            state.push_work(decl)


def guard_state_fork(state, valid: SymVal, value: SymVal) -> None:
    """Emit under a symbolic validity bit.

    A variable-width packet cannot be encoded in QF_BV, so we pick the
    branch where the header is valid and constrain accordingly; the
    invalid-branch path was already explored via control flow wherever
    validity was decided.  If the constraint is infeasible the path dies
    at the next prune.
    """
    state.add_constraint(valid.term)
    state.packet.emit(value)
