"""Target extensions: pipeline templates and target-specific semantics.

The four extensions from the paper's Tbl. 1: V1Model (BMv2), Tna
(Tofino 1), T2na (Tofino 2), and EbpfModel (Linux kernel)."""

from .base import Preconditions, TargetExtension
from .ebpf import EbpfModel
from .t2na import T2na
from .tna import Tna
from .v1model import V1Model

__all__ = [
    "TargetExtension", "Preconditions",
    "V1Model", "Tna", "T2na", "EbpfModel",
    "TARGETS", "get_target",
]

TARGETS = {
    "v1model": V1Model,
    "tna": Tna,
    "t2na": T2na,
    "ebpf_model": EbpfModel,
}


def get_target(name: str, **kwargs) -> TargetExtension:
    try:
        return TARGETS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {', '.join(sorted(TARGETS))}"
        )
